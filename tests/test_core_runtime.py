"""Core runtime pieces: threads, continuations, registry, ctx validation."""

import pytest

from repro.core.continuation import ContinuationTable
from repro.core.registry import ProgramRegistry
from repro.core.thread import EMThread, ThreadState
from repro.core.threadlib import ThreadCtx
from repro.errors import ProgramError, SchedulerError, ThreadProtocolError
from repro.memory import FrameTable, LocalMemory, SegmentAllocator


def mk_thread(tid=0):
    frames = FrameTable(SegmentAllocator(1024), pe=0)

    def body():
        yield

    return EMThread(tid, 0, frames.create(), body())


# ----------------------------------------------------------------------
# Thread state machine
# ----------------------------------------------------------------------
def test_legal_lifecycle():
    th = mk_thread()
    th.transition(ThreadState.RUNNING)
    th.transition(ThreadState.WAIT_READ)
    th.transition(ThreadState.RUNNING)
    th.transition(ThreadState.DONE)
    assert not th.alive


def test_illegal_transition_rejected():
    th = mk_thread()
    with pytest.raises(ThreadProtocolError):
        th.transition(ThreadState.WAIT_READ)  # READY -> WAIT_READ skips RUNNING


def test_done_is_terminal():
    th = mk_thread()
    th.transition(ThreadState.RUNNING)
    th.transition(ThreadState.DONE)
    with pytest.raises(ThreadProtocolError):
        th.transition(ThreadState.RUNNING)


def test_explicit_switch_back_to_ready():
    th = mk_thread()
    th.transition(ThreadState.RUNNING)
    th.transition(ThreadState.READY)
    th.transition(ThreadState.RUNNING)
    assert th.state is ThreadState.RUNNING


# ----------------------------------------------------------------------
# Continuation table
# ----------------------------------------------------------------------
def test_register_resolve_roundtrip():
    ct = ContinuationTable(0)
    th = mk_thread()
    cid = ct.register(th, tag="pair")
    assert ct.outstanding == 1
    resolved, tag = ct.resolve(cid)
    assert resolved is th and tag == "pair"
    assert ct.outstanding == 0


def test_ids_are_recycled():
    ct = ContinuationTable(0)
    cid1 = ct.register(mk_thread(0))
    ct.resolve(cid1)
    cid2 = ct.register(mk_thread(1))
    assert cid2 == cid1  # freed id reused


def test_resolve_unknown_rejected():
    with pytest.raises(SchedulerError):
        ContinuationTable(0).resolve(3)


def test_peek_does_not_consume():
    ct = ContinuationTable(0)
    th = mk_thread()
    cid = ct.register(th)
    assert ct.peek(cid)[0] is th
    assert ct.outstanding == 1


def test_counters():
    ct = ContinuationTable(0)
    for i in range(3):
        ct.resolve(ct.register(mk_thread(i)))
    assert ct.registered == 3
    assert ct.resolved == 3


# ----------------------------------------------------------------------
# Program registry
# ----------------------------------------------------------------------
def test_registry_requires_generator_function():
    reg = ProgramRegistry()

    def not_a_gen(ctx):
        return 1

    with pytest.raises(ProgramError, match="generator"):
        reg.register(not_a_gen)


def test_registry_roundtrip_and_contains():
    reg = ProgramRegistry()

    def worker(ctx):
        yield

    name = reg.register(worker)
    assert name == "worker"
    assert "worker" in reg and len(reg) == 1
    assert reg.get("worker") is worker


def test_registry_idempotent_reregister():
    reg = ProgramRegistry()

    def worker(ctx):
        yield

    reg.register(worker)
    reg.register(worker)  # same function twice is fine
    assert len(reg) == 1


def test_registry_name_conflict_rejected():
    reg = ProgramRegistry()

    def worker(ctx):
        yield

    def other(ctx):
        yield

    reg.register(worker, name="job")
    with pytest.raises(ProgramError, match="already registered"):
        reg.register(other, name="job")


def test_registry_unknown_name():
    with pytest.raises(ProgramError):
        ProgramRegistry().get("nope")


# ----------------------------------------------------------------------
# ThreadCtx
# ----------------------------------------------------------------------
def test_ctx_ga_validates_pe():
    ctx = ThreadCtx(0, 4, LocalMemory(16), {}, tid=0)
    assert ctx.ga(3, 5).pe == 3
    with pytest.raises(ProgramError):
        ctx.ga(4, 0)


def test_ctx_effect_constructors():
    ctx = ThreadCtx(1, 4, LocalMemory(16), {}, tid=0)
    assert ctx.compute(5).cycles == 5
    assert ctx.read(ctx.ga(0, 1)).addr == (0, 1)
    assert ctx.read_pair(ctx.ga(0, 1), ctx.ga(0, 2)).addr_b == (0, 2)
    assert ctx.read_block(ctx.ga(2, 0), 4).count == 4
    assert ctx.write(ctx.ga(0, 1), 9).value == 9
    assert list(ctx.write_block(ctx.ga(0, 1), [1, 2]).values) == [1, 2]
    assert ctx.spawn(2, "f", 1, 2).args == (1, 2)
    assert ctx.call(2, "f").pe == 2
    assert ctx.reply((0, 7), "v").continuation == (0, 7)
    assert ctx.switch().suspends


def test_ctx_compute_rejects_negative():
    ctx = ThreadCtx(0, 2, LocalMemory(4), {}, tid=0)
    with pytest.raises(ThreadProtocolError):
        ctx.compute(-1)
