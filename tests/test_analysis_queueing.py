"""Omega fabric load model: unit behaviour + simulator cross-validation."""

import pytest

from repro.analysis import OmegaLoadModel
from repro.config import MachineConfig, TimingModel
from repro.errors import ConfigError
from repro.network import CircularOmegaTopology, DetailedOmegaNetwork
from repro.packet import Packet, PacketKind
from repro.sim import Engine


def test_unloaded_matches_cut_through():
    m = OmegaLoadModel(n_pes=64)
    assert m.one_way_latency(0.0) == pytest.approx(m.mean_hops + 1, abs=1e-9)


def test_latency_monotone_in_load():
    m = OmegaLoadModel(n_pes=64)
    loads = [0.0, 0.01, 0.02, 0.04, 0.08]
    lats = [m.one_way_latency(x) for x in loads]
    assert all(b > a for a, b in zip(lats, lats[1:]))


def test_md1_wait_shape():
    assert OmegaLoadModel.md1_wait(0.0, 2) == 0.0
    assert OmegaLoadModel.md1_wait(0.5, 2) == pytest.approx(1.0)
    assert OmegaLoadModel.md1_wait(0.9, 2) > 5.0
    with pytest.raises(ConfigError):
        OmegaLoadModel.md1_wait(1.0, 2)


def test_saturation_load_saturates():
    m = OmegaLoadModel(n_pes=64)
    sat = m.saturation_load()
    assert m.hot_port_utilization(sat) == pytest.approx(0.999, abs=0.01)
    assert m.hot_port_utilization(sat / 2) == pytest.approx(0.5, rel=0.05)


def test_rtt_includes_dma():
    m = OmegaLoadModel(n_pes=16, dma_service=5)
    assert m.read_rtt(0.0) == pytest.approx(2 * m.one_way_latency(0.0) + 5)


def test_validation():
    with pytest.raises(ConfigError):
        OmegaLoadModel(n_pes=0)
    with pytest.raises(ConfigError):
        OmegaLoadModel(n_pes=4, hotspot_factor=0.5)
    with pytest.raises(ConfigError):
        OmegaLoadModel(n_pes=4).mean_port_utilization(-1)


def _measure_sim_latency(n_pes: int, spacing: int, packets_per_pe: int = 40) -> float:
    """Drive uniform random traffic through the detailed network and
    return the measured mean latency."""
    import random

    rng = random.Random(7)
    engine = Engine()
    net = DetailedOmegaNetwork(engine, CircularOmegaTopology(n_pes), TimingModel())
    for pe in range(n_pes):
        net.attach(pe, lambda p: None)
    for k in range(packets_per_pe):
        for src in range(n_pes):
            dst = rng.randrange(n_pes)
            engine.schedule(
                k * spacing + (src % spacing),
                net.send,
                Packet(kind=PacketKind.WRITE, src=src, dst=dst, data=0),
            )
    engine.run()
    return net.stats.mean_latency


def test_cross_validation_against_detailed_sim():
    """A7: the model tracks the simulator within a factor of two across
    light-to-moderate loads, and both grow with load."""
    n_pes = 16
    model = OmegaLoadModel(
        n_pes=n_pes,
        hotspot_factor=2.0,
        eject_cycles=TimingModel().eject,
    )
    measured = []
    predicted = []
    for spacing in (64, 16, 8):
        rate = 1.0 / spacing
        measured.append(_measure_sim_latency(n_pes, spacing))
        predicted.append(model.one_way_latency(min(rate, model.saturation_load() * 0.9)))
    # Both rise with offered load.
    assert measured[0] < measured[-1]
    assert predicted[0] < predicted[-1]
    # Agreement within 2x at every point.
    for got, want in zip(measured, predicted):
        assert 0.5 < got / want < 2.0, (measured, predicted)
