"""CSV figure export."""

import csv

import pytest

from repro.errors import ConfigError
from repro.experiments import default_scale, export_all


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("csv")
    import os

    os.environ["REPRO_SCALE"] = "tiny"
    paths = export_all(outdir, default_scale(), threads=(1, 2, 4))
    return outdir, paths


def _read(path):
    with path.open() as fh:
        return list(csv.DictReader(fh))


def test_writes_one_csv_per_figure_plus_combined(exported):
    outdir, paths = exported
    names = sorted(p.name for p in paths)
    assert names == ["all_figures.csv", "fig6.csv", "fig7.csv", "fig8.csv", "fig9.csv"]


def test_fig6_rows_shape(exported):
    outdir, _ = exported
    rows = _read(outdir / "fig6.csv")
    assert rows, "no fig6 rows"
    first = rows[0]
    assert set(first) == {"figure", "panel", "app", "n_pes", "npp", "threads", "metric", "value"}
    assert all(r["figure"] == "fig6" for r in rows)
    assert all(r["metric"] == "comm_seconds" for r in rows)
    assert {r["panel"] for r in rows} == {"a", "b", "c", "d"}


def test_fig7_baseline_zero(exported):
    outdir, _ = exported
    rows = _read(outdir / "fig7.csv")
    ones = [float(r["value"]) for r in rows if r["threads"] == "1"]
    assert ones and all(v == 0.0 for v in ones)


def test_fig8_percentages_sum(exported):
    outdir, _ = exported
    rows = _read(outdir / "fig8.csv")
    by_key = {}
    for r in rows:
        key = (r["panel"], r["threads"])
        by_key.setdefault(key, 0.0)
        by_key[key] += float(r["value"])
    for key, total in by_key.items():
        assert abs(total - 100.0) < 1e-6, key


def test_combined_is_concatenation(exported):
    outdir, _ = exported
    combined = _read(outdir / "all_figures.csv")
    parts = sum(len(_read(outdir / f"{f}.csv")) for f in ("fig6", "fig7", "fig8", "fig9"))
    assert len(combined) == parts


def test_unknown_figure_rejected(tmp_path):
    with pytest.raises(ConfigError):
        export_all(tmp_path, figures=("fig42",))
