"""Input Buffer Unit: DMA service, priorities, overflow, write path."""

import pytest

from repro import EMX, MachineConfig
from repro.packet import GlobalAddress, Packet, PacketKind, Priority


def mk_machine(**overrides):
    return EMX(MachineConfig(n_pes=4, memory_words=1 << 12).with_(**overrides))


def test_remote_write_completes_without_exu():
    """A WRITE packet updates memory and never reaches the EXU queue."""
    m = mk_machine()
    target = m.pes[1]
    pkt = Packet(
        kind=PacketKind.WRITE, src=0, dst=1, address=GlobalAddress(1, 7).packed(), data=99
    )
    m.engine.schedule(0, m.network.send, pkt)
    m.engine.run()
    assert target.memory.read(7) == 99
    assert target.ibu.queued == 0
    assert target.counters.total_cycles == 0  # EXU never woke up


def test_dma_read_service_consumes_no_exu_cycles():
    """EM-X by-passing DMA: the read target's EXU stays silent."""
    m = mk_machine()

    @m.thread
    def reader(ctx):
        v = yield ctx.read(ctx.ga(1, 3))
        assert v == 5

    m.pes[1].memory.write(3, 5)
    m.spawn(0, "reader")
    report = m.run()
    assert report.counters[1].total_cycles == 0
    assert report.counters[1].reads_serviced == 1
    assert m.pes[1].ibu.dma_serviced == 1


def test_em4_mode_read_service_steals_exu_cycles():
    m = mk_machine(em4_mode=True)

    @m.thread
    def reader(ctx):
        v = yield ctx.read(ctx.ga(1, 3))
        assert v == 5

    m.pes[1].memory.write(3, 5)
    m.spawn(0, "reader")
    report = m.run()
    assert report.counters[1].total_cycles >= m.config.timing.em4_read_service
    assert report.counters[1].reads_serviced == 1


def test_dma_serialises_back_to_back_requests():
    """Two requests to the same IBU are serviced one DMA slot apart."""
    m = mk_machine()
    finish = {}

    @m.thread
    def reader(ctx, tag):
        yield ctx.read(ctx.ga(2, 0))
        finish[tag] = True

    m.spawn(0, "reader", "a")
    m.spawn(1, "reader", "b")
    m.run()
    assert finish == {"a": True, "b": True}
    assert m.pes[2].ibu.dma_serviced == 2


def test_priority_replies_use_high_fifo():
    m = mk_machine(priority_replies=True)
    proc = m.pes[0]
    reply = Packet(kind=PacketKind.READ_REPLY, src=1, dst=0, address=0, data=1,
                   priority=Priority.HIGH)
    normal = Packet(kind=PacketKind.RESUME, src=0, dst=0, data=("explicit", None))
    proc.ibu.enqueue(normal)
    proc.ibu.enqueue(reply)
    popped, _ = proc.ibu.pop()
    assert popped.kind is PacketKind.READ_REPLY  # high priority first


def test_overflow_counts_and_extra_cost():
    m = EMX(MachineConfig(n_pes=2, ibu_fifo_depth=2, memory_words=1 << 12))
    proc = m.pes[0]
    for i in range(5):
        proc.ibu.enqueue(Packet(kind=PacketKind.RESUME, src=0, dst=0, data=("explicit", i)))
    assert proc.counters.ibu_overflows == 3
    # First two on-chip packets dequeue free; the rest pay the restore.
    assert proc.ibu.pop()[1] == 0
    assert proc.ibu.pop()[1] == 0
    assert proc.ibu.pop()[1] == m.config.timing.mem_exchange


def test_block_read_round_trip():
    m = mk_machine()
    got = {}

    @m.thread
    def blocker(ctx):
        values = yield ctx.read_block(ctx.ga(1, 4), 4)
        got["values"] = values

    m.pes[1].memory.write_block(4, [10, 11, 12, 13])
    m.spawn(0, "blocker")
    m.run()
    assert got["values"] == [10, 11, 12, 13]


def test_block_read_em4_mode():
    m = mk_machine(em4_mode=True)
    got = {}

    @m.thread
    def blocker(ctx):
        got["values"] = yield ctx.read_block(ctx.ga(1, 0), 3)

    m.pes[1].memory.write_block(0, [7, 8, 9])
    m.spawn(0, "blocker")
    m.run()
    assert got["values"] == [7, 8, 9]
