"""EM-C front end: lexer and parser."""

import pytest

from repro.emc import Lexer, TokenKind
from repro.emc import ast as A
from repro.emc.parser import parse
from repro.errors import EmcSyntaxError


def lex(src):
    return [(t.kind, t.text) for t in Lexer(src).tokens()]


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
def test_lex_simple_tokens():
    assert lex("var x = 12;") == [
        (TokenKind.KEYWORD, "var"),
        (TokenKind.IDENT, "x"),
        (TokenKind.OP, "="),
        (TokenKind.INT, "12"),
        (TokenKind.PUNCT, ";"),
        (TokenKind.EOF, ""),
    ]


def test_lex_floats_and_ints():
    kinds = [k for k, _ in lex("1 2.5 0.125")]
    assert kinds[:3] == [TokenKind.INT, TokenKind.FLOAT, TokenKind.FLOAT]


def test_lex_two_char_operators():
    texts = [t for _, t in lex("a == b != c <= d >= e && f || g")]
    assert "==" in texts and "!=" in texts and "<=" in texts
    assert ">=" in texts and "&&" in texts and "||" in texts


def test_lex_strings():
    assert (TokenKind.STRING, "hello world") in lex('"hello world"')


def test_lex_comments_skipped():
    src = """
    // line comment
    var x /* block
    comment */ = 1;
    """
    texts = [t for _, t in lex(src)]
    assert texts == ["var", "x", "=", "1", ";", ""]


def test_lex_empty_source():
    assert lex("") == [(TokenKind.EOF, "")]
    assert lex("   \n\t ") == [(TokenKind.EOF, "")]


def test_lex_positions():
    toks = Lexer("a\n  b").tokens()
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_lex_errors():
    with pytest.raises(EmcSyntaxError, match="unexpected character"):
        Lexer("@").tokens()
    with pytest.raises(EmcSyntaxError, match="unterminated string"):
        Lexer('"abc').tokens()
    with pytest.raises(EmcSyntaxError, match="unterminated block comment"):
        Lexer("/* abc").tokens()
    with pytest.raises(EmcSyntaxError, match="malformed number"):
        Lexer("12.").tokens()
    with pytest.raises(EmcSyntaxError, match="newline inside string"):
        Lexer('"a\nb"').tokens()


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def test_parse_thread_signature():
    prog = parse("thread f(a, b) { return; }")
    assert prog.threads["f"].params == ("a", "b")


def test_parse_precedence():
    prog = parse("thread f() { var x = 1 + 2 * 3; }")
    decl = prog.threads["f"].body.statements[0]
    assert isinstance(decl.value, A.BinOp) and decl.value.op == "+"
    assert isinstance(decl.value.right, A.BinOp) and decl.value.right.op == "*"


def test_parse_parentheses_override():
    prog = parse("thread f() { var x = (1 + 2) * 3; }")
    decl = prog.threads["f"].body.statements[0]
    assert decl.value.op == "*"


def test_parse_if_else_chain():
    prog = parse(
        "thread f(x) { if (x > 0) { return 1; } else if (x < 0) { return 2; } else { return 3; } }"
    )
    node = prog.threads["f"].body.statements[0]
    assert isinstance(node, A.If)
    nested = node.else_block.statements[0]
    assert isinstance(nested, A.If)
    assert nested.else_block is not None


def test_parse_for_parts_optional():
    prog = parse("thread f() { for (;;) { break; } }")
    loop = prog.threads["f"].body.statements[0]
    assert loop.init is None and loop.condition is None and loop.step is None


def test_parse_mem_load_and_store():
    prog = parse("thread f() { mem[0] = mem[1] + 2; }")
    store = prog.threads["f"].body.statements[0]
    assert isinstance(store, A.MemStore)
    assert isinstance(store.value.left, A.MemLoad)


def test_parse_call_args():
    prog = parse('thread f() { spawn(1, "f", 2, 3); }')
    call = prog.threads["f"].body.statements[0].expr
    assert call.name == "spawn" and len(call.args) == 4
    assert call.args[1].value == "f"


def test_parse_unary():
    prog = parse("thread f() { var x = -3 + !0; }")
    expr = prog.threads["f"].body.statements[0].value
    assert isinstance(expr.left, A.UnaryOp) and expr.left.op == "-"
    assert isinstance(expr.right, A.UnaryOp) and expr.right.op == "!"


def test_parse_errors():
    with pytest.raises(EmcSyntaxError, match="empty program"):
        parse("")
    with pytest.raises(EmcSyntaxError, match="duplicate thread"):
        parse("thread f() { return; } thread f() { return; }")
    with pytest.raises(EmcSyntaxError, match="duplicate parameter"):
        parse("thread f(a, a) { return; }")
    with pytest.raises(EmcSyntaxError, match="expected"):
        parse("thread f( { return; }")
    with pytest.raises(EmcSyntaxError, match="unterminated block"):
        parse("thread f() { return;")
    with pytest.raises(EmcSyntaxError, match="expected an expression"):
        parse("thread f() { var x = ; }")
