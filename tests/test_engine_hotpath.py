"""The calendar-queue hot path: differential, determinism, tombstones.

The batch-drain engine must be observably identical to the reference
heapq engine: same pop order on arbitrary push/cancel workloads, same
simulation results event for event, and the same cancel semantics under
fire/cancel races.  These tests pin all three.
"""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.bitonic import run_bitonic
from repro.errors import SimulationError
from repro.machine import machine as machine_mod
from repro.obs import EventBus, RingRecorder, write_perfetto
from repro.sim.engine import Engine
from repro.sim.queue import EventQueue, ReferenceEventQueue

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def _noop(*_args):
    pass


# ----------------------------------------------------------------------
# Differential: calendar queue vs reference heapq
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=150, deadline=None)
def test_calendar_matches_reference_on_random_workload(data):
    """Identical pop order on interleaved random push/cancel/pop.

    A deliberately tiny window (16 cycles against times up to 200)
    forces constant far-tier spills and below-base pushes, so the
    two-tier plumbing — not just the happy bucket path — is compared.
    """
    cal = EventQueue(window=16)
    ref = ReferenceEventQueue()
    handles: list[tuple] = []
    for i in range(data.draw(st.integers(10, 120))):
        op = data.draw(st.sampled_from(("push", "push", "push", "cancel", "pop")))
        if op == "push":
            t = data.draw(st.integers(0, 200))
            handles.append((cal.push(t, _noop, i), ref.push(t, _noop, i)))
        elif op == "cancel" and handles:
            ch, rh = handles[data.draw(st.integers(0, len(handles) - 1))]
            cal.cancel(ch)
            ref.cancel(rh)
        elif op == "pop" and ref:
            a, b = cal.pop(), ref.pop()
            assert (a.time, a.seq, a.args) == (b.time, b.seq, b.args)
        assert len(cal) == len(ref)
        assert cal.peek_time() == ref.peek_time()
    while ref:
        a, b = cal.pop(), ref.pop()
        assert (a.time, a.seq, a.args) == (b.time, b.seq, b.args)
    assert not cal


def _on_reference_engine(fn):
    """Run ``fn`` with machines built on the reference heapq engine."""
    orig = machine_mod.Engine
    machine_mod.Engine = lambda max_cycles: Engine(
        max_cycles, queue=ReferenceEventQueue()
    )
    try:
        return fn()
    finally:
        machine_mod.Engine = orig


def test_full_simulation_identical_on_reference_queue():
    """An end-to-end run is bit-identical across the two engines."""
    fast = run_bitonic(n_pes=4, n=64, h=4, seed=0).report
    slow = _on_reference_engine(lambda: run_bitonic(n_pes=4, n=64, h=4, seed=0)).report
    assert fast.runtime_cycles == slow.runtime_cycles
    assert fast.events_fired == slow.events_fired
    assert fast.network.packets == slow.network.packets
    assert fast.network.total_latency == slow.network.total_latency
    assert fast.breakdown == slow.breakdown
    assert [c.total_switches for c in fast.counters] == [
        c.total_switches for c in slow.counters
    ]


def test_generic_engine_path_still_works():
    eng = Engine(queue=ReferenceEventQueue())
    out = []
    eng.schedule(3, out.append, 1)
    eng.schedule_at(5, out.append, 2)
    eng.run()
    assert out == [1, 2]
    assert eng.now == 5


# ----------------------------------------------------------------------
# Cancel semantics (tombstone slots)
# ----------------------------------------------------------------------
def test_len_never_counts_tombstones():
    q = EventQueue()
    h1 = q.push(1, _noop)
    h2 = q.push(2, _noop)
    assert len(q) == 2
    q.cancel(h1)
    assert len(q) == 1
    q.cancel(h1)  # double cancel: no drift
    assert len(q) == 1
    assert q.pop().time == 2
    assert len(q) == 0
    q.cancel(h2)  # cancel after fire: strict no-op
    assert len(q) == 0 and not q


def test_engine_cancel_after_fire_is_noop():
    eng = Engine()
    fired = []
    handle = eng.schedule(1, fired.append, "x")
    eng.run()
    assert fired == ["x"]
    eng.cancel(handle)
    eng.cancel(handle)
    assert len(eng.queue) == 0
    assert eng.events_fired == 1


def test_same_cycle_cancel_races_the_drain():
    """An event cancelling a later same-cycle event must win the race."""
    eng = Engine()
    fired = []
    h2 = None
    eng.schedule(5, lambda: eng.cancel(h2))
    h2 = eng.schedule(5, fired.append, "second")
    eng.run()
    assert fired == []
    assert eng.events_fired == 1
    assert len(eng.queue) == 0


def test_fast_schedule_keeps_validation():
    eng = Engine()
    seen = []
    eng.schedule_at(2, seen.append, "a")
    eng.run()
    assert seen == ["a"] and eng.now == 2
    with pytest.raises(SimulationError):
        eng.schedule_at(1, _noop)  # in the past
    with pytest.raises(SimulationError):
        eng.schedule(-1, _noop)


# ----------------------------------------------------------------------
# Golden trace: the batch drain may not move a single event
# ----------------------------------------------------------------------
def test_perfetto_golden_byte_identical(tmp_path):
    bus = EventBus()
    rec = RingRecorder(bus)
    run_bitonic(n_pes=2, n=16, h=2, seed=0, obs=bus)
    path = write_perfetto(tmp_path / "out.perfetto.json", rec.events, n_pes=2)
    golden = GOLDEN_DIR / "sort_p2_n16_h2.perfetto.json"
    assert path.read_bytes() == golden.read_bytes()
