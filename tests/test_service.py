"""End-to-end tests for the sweep service: dedup, warm hits,
backpressure, streaming, and graceful drain.

The server runs inline (thread-pool batch workers) inside each test's
event loop; clients are the real blocking ``SweepClient`` driven
through ``asyncio.to_thread``, so every test exercises the actual HTTP
wire format.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.runner import JobSpec, ResultCache
from repro.service import (
    ServiceError,
    ServiceUnavailable,
    SweepClient,
    SweepService,
)

SPECS = [JobSpec(app="sort", n_pes=2, npp=8, h=h) for h in (1, 2)]


def service_test(coro_fn, tmp_path, **service_kwargs):
    """Run ``coro_fn(service, url)`` against a live inline service."""
    kwargs = dict(
        cache_dir=str(tmp_path / "svc-cache"),
        inline=True,
        workers=2,
        batch_size=4,
        linger_s=0.01,
        max_queue=32,
    )
    kwargs.update(service_kwargs)

    async def _main():
        service = SweepService(**kwargs)
        host, port = await service.start()
        try:
            return await coro_fn(service, f"http://{host}:{port}")
        finally:
            if not service._stopped.is_set():
                await service.shutdown(drain=True)

    return asyncio.run(_main())


def record_bytes(summary) -> dict[str, str]:
    """Canonical serialisation of each result record, keyed by job key."""
    return {
        entry["key"]: json.dumps(entry["record"], sort_keys=True)
        for entry in summary["results"]
    }


def raw_request(url: str, method: str, path: str, body: bytes | None = None,
                headers: dict | None = None):
    """One raw http.client round trip; returns (status, headers, body)."""
    host, port = url.removeprefix("http://").split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Dedup and warm paths (the acceptance criteria)
# ----------------------------------------------------------------------

def test_two_concurrent_clients_one_execution_per_key(tmp_path):
    """N clients racing the same cold sweep cost one execution per key."""

    async def scenario(service, url):
        barrier = threading.Barrier(2)

        def submit():
            barrier.wait(timeout=30)
            return SweepClient(url, timeout_s=120).submit(SPECS)

        first, second = await asyncio.gather(
            asyncio.to_thread(submit), asyncio.to_thread(submit)
        )
        return service.stats, first, second

    stats, first, second = service_test(scenario, tmp_path)
    # Exactly one execution per content key, however the two requests
    # interleaved (the loser sees dedup or — if it arrived after the
    # batch finished — warm hits; never a second execution).
    assert stats.executed == len(SPECS)
    assert stats.failed == 0
    for summary in (first, second):
        assert summary["jobs"] == len(SPECS)
        assert summary["failed"] == 0
        assert all(entry["record"] is not None for entry in summary["results"])
    assert record_bytes(first) == record_bytes(second)


def test_inflight_dedup_is_deterministic_at_admission(tmp_path):
    """Back-to-back admission in one loop step: second request attaches."""

    async def scenario(service, url):
        plan1 = service._admit_sweep(SPECS)
        plan2 = service._admit_sweep(SPECS)
        assert [row[2] for row in plan1] == ["admitted"] * len(SPECS)
        assert [row[2] for row in plan2] == ["dedup"] * len(SPECS)
        # Both plans share the same futures object-for-object.
        assert [id(row[3]) for row in plan1] == [id(row[3]) for row in plan2]
        outcomes = await asyncio.gather(*(row[3] for row in plan1))
        assert all(outcome.error is None for outcome in outcomes)
        return service.stats

    stats = service_test(scenario, tmp_path)
    assert stats.executed == len(SPECS)
    assert stats.dedup_hits == len(SPECS)


def test_duplicate_specs_within_one_request_dedup(tmp_path):
    async def scenario(service, url):
        doubled = [SPECS[0], SPECS[0]]
        summary = await asyncio.to_thread(
            lambda: SweepClient(url, timeout_s=120).submit(doubled)
        )
        return service.stats, summary

    stats, summary = service_test(scenario, tmp_path)
    assert stats.executed == 1
    assert summary["dedup"] == 1
    entries = summary["results"]
    assert entries[0]["record"] == entries[1]["record"] is not None


def test_warm_resubmission_executes_zero_and_is_byte_identical(tmp_path):
    async def scenario(service, url):
        cold = await asyncio.to_thread(
            lambda: SweepClient(url, timeout_s=120).submit(SPECS)
        )
        warm = await asyncio.to_thread(
            lambda: SweepClient(url, timeout_s=120).submit(SPECS)
        )
        return service.stats, cold, warm

    stats, cold, warm = service_test(scenario, tmp_path)
    assert stats.executed == len(SPECS)  # only the cold pass ran anything
    assert warm["warm"] == len(SPECS)
    assert warm["executed"] == 0 and warm["failed"] == 0
    assert all(entry["source"] == "warm" for entry in warm["results"])
    assert record_bytes(cold) == record_bytes(warm)


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------

def test_oversized_sweep_sheds_with_429_and_retry_after(tmp_path):
    cold = [JobSpec(app="sort", n_pes=2, npp=8, h=h) for h in (1, 2, 4)]

    async def scenario(service, url):
        payload = json.dumps(
            {"jobs": [dict(app=s.app, n_pes=s.n_pes, npp=s.npp, h=s.h) for s in cold]}
        ).encode()
        status, headers, body = await asyncio.to_thread(
            raw_request, url, "POST", "/sweep", payload,
            {"Content-Type": "application/json"},
        )
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert b"retry" in body.lower()
        # Nothing was admitted: the request shed whole.
        assert service.stats.admitted == 0
        assert service.stats.shed_requests == 1

        # The client surfaces exhausted retries as ServiceUnavailable.
        with pytest.raises(ServiceUnavailable):
            await asyncio.to_thread(
                lambda: SweepClient(url, retries=1, backoff_s=0.01,
                                    timeout_s=30).submit(cold)
            )

        # A request that fits the bound still goes through afterwards.
        summary = await asyncio.to_thread(
            lambda: SweepClient(url, timeout_s=120).submit(cold[:2])
        )
        assert summary["failed"] == 0
        return service.stats

    stats = service_test(scenario, tmp_path, max_queue=2)
    assert stats.shed_requests >= 2
    assert stats.max_queue_depth <= 2


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------

def test_graceful_shutdown_drains_queued_jobs_to_cache(tmp_path):
    cold = [JobSpec(app="sort", n_pes=2, npp=8, h=h) for h in (1, 2, 4)]

    async def scenario(service, url):
        plan = service._admit_sweep(cold)
        # Shut down immediately: every admitted job must still complete
        # and persist before the service reports stopped.
        await service.shutdown(drain=True)
        for row in plan:
            outcome = row[3].result()
            assert outcome.error is None
        return service.stats

    stats = service_test(scenario, tmp_path)
    assert stats.executed == len(cold)
    cache = ResultCache(str(tmp_path / "svc-cache"))
    assert len(cache) == len(cold)
    for spec in cold:
        assert cache.get(spec) is not None


def test_shutdown_endpoint_stops_the_server(tmp_path):
    async def scenario(service, url):
        payload = await asyncio.to_thread(SweepClient(url).shutdown)
        assert payload["ok"] is True
        await asyncio.wait_for(service.wait_stopped(), timeout=30)
        healthy = await asyncio.to_thread(
            SweepClient(url, retries=0, timeout_s=5).health
        )
        assert healthy is False
        return True

    assert service_test(scenario, tmp_path)


# ----------------------------------------------------------------------
# HTTP surface details
# ----------------------------------------------------------------------

def test_http_error_paths(tmp_path):
    async def scenario(service, url):
        checks = []
        for method, path, body, want in [
            ("GET", "/nowhere", None, 404),
            ("GET", "/sweep", None, 405),
            ("POST", "/sweep", b"{not json", 400),
            ("POST", "/sweep", b'{"jobs": []}', 400),
            ("POST", "/sweep", b'{"jobs": [{"app": "no-such-app", "n_pes": 2, "npp": 8, "h": 1}]}', 400),
            ("POST", "/sweep", b'{"jobs": [{"app": "sort", "n_pes": 2, "npp": 8, "h": 1, "bogus": 1}]}', 400),
        ]:
            headers = {"Content-Length": str(len(body))} if body else {}
            status, _, _ = await asyncio.to_thread(
                raw_request, url, method, path, body, headers
            )
            checks.append((method, path, status, want))
        return checks, service.stats

    checks, stats = service_test(scenario, tmp_path)
    for method, path, status, want in checks:
        assert status == want, (method, path, status)
    assert stats.bad_requests == len(checks)
    assert stats.executed == 0


def test_status_shares_the_cache_stats_schema(tmp_path):
    async def scenario(service, url):
        await asyncio.to_thread(
            lambda: SweepClient(url, timeout_s=120).submit([SPECS[0]])
        )
        return await asyncio.to_thread(SweepClient(url).status)

    status = service_test(scenario, tmp_path)
    assert status["ok"] is True
    assert status["queue"]["capacity"] == 32
    assert status["stats"]["executed"] == 1
    # The cache section is CacheStats.to_dict() — same keys the CLI's
    # `cache stats --json` prints — plus the service's dedup counter.
    cache = status["cache"]
    assert {"root", "schema", "entries", "bytes", "timed_entries",
            "wall_seconds", "peak_rss_kb", "counters"} <= set(cache)
    assert {"hits", "misses", "writes", "discards", "dedup"} <= set(cache["counters"])
    assert cache["entries"] == 1


def test_streamed_progress_event_order(tmp_path):
    async def scenario(service, url):
        events = []
        summary = await asyncio.to_thread(
            lambda: SweepClient(url, timeout_s=120).submit(
                SPECS, on_progress=events.append
            )
        )
        return events, summary

    events, summary = service_test(scenario, tmp_path)
    kinds = [event["event"] for event in events]
    assert kinds[0] == "accepted"
    assert kinds[-1] == "done"
    assert kinds.count("job") == len(SPECS)
    assert events[0]["admitted"] == len(SPECS)
    assert summary["executed"] == len(SPECS)


def test_non_streaming_submit(tmp_path):
    async def scenario(service, url):
        return await asyncio.to_thread(
            lambda: SweepClient(url, timeout_s=120).submit(SPECS, stream=False)
        )

    summary = service_test(scenario, tmp_path)
    assert summary["event"] == "done"
    assert summary["executed"] == len(SPECS)
    assert all(entry["record"] is not None for entry in summary["results"])


def test_healthz_and_draining_rejection(tmp_path):
    async def scenario(service, url):
        assert await asyncio.to_thread(SweepClient(url).health) is True
        service._draining = True  # simulate mid-drain without stopping
        status, headers, _ = await asyncio.to_thread(
            raw_request, url, "POST", "/sweep",
            b'{"jobs": [{"app": "sort", "n_pes": 2, "npp": 8, "h": 1}]}',
            {"Content-Type": "application/json"},
        )
        assert status == 503
        assert "Retry-After" in headers
        service._draining = False
        return True

    assert service_test(scenario, tmp_path)


def test_client_retries_exhausted_against_dead_server():
    client = SweepClient("http://127.0.0.1:9", retries=1, backoff_s=0.01,
                         timeout_s=2)
    with pytest.raises(ServiceUnavailable):
        client.status()
    assert client.health() is False


def test_client_rejects_non_http_urls():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        SweepClient("https://example.com")


def test_client_submit_requires_jobs():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        SweepClient("http://127.0.0.1:9").submit([])


def test_service_error_carries_status(tmp_path):
    async def scenario(service, url):
        with pytest.raises(ServiceError) as err:
            await asyncio.to_thread(
                lambda: SweepClient(url, timeout_s=30).submit(
                    [{"app": "sort", "n_pes": 2, "npp": 8, "h": 1, "bogus": 3}]
                )
            )
        return err.value.status

    assert service_test(scenario, tmp_path) == 400
