"""Golden-run regression: the simulator's exact determinism, pinned.

Any change to timing constants, scheduling, routing, or accounting
produces a diff here.  After an *intentional* model change, regenerate
with: python -m repro goldens --write tests/goldens
"""

import pathlib

import pytest

from repro.errors import ConfigError
from repro.experiments.goldens import GOLDEN_CONFIGS, compare_goldens, make_goldens

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def test_goldens_match_stored():
    problems = compare_goldens(GOLDEN_DIR)
    assert problems == [], "\n".join(
        ["golden regression (regenerate via `python -m repro goldens --write tests/goldens`"
         " if the change was intentional):"] + problems
    )


def test_goldens_cover_all_apps():
    apps = {cfg[1] for cfg in GOLDEN_CONFIGS}
    assert apps == {"sort", "fft", "transpose"}


def test_make_goldens_is_deterministic():
    assert make_goldens() == make_goldens()


def test_missing_golden_file_rejected(tmp_path):
    with pytest.raises(ConfigError, match="no golden file"):
        compare_goldens(tmp_path)
