"""Unit tests of the reproduction shape checkers on synthetic data."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    check_efficiency_bands,
    check_fig6_minimum,
    check_fig8_components,
    check_fig9_orderings,
)


# ----------------------------------------------------------------------
# Fig. 6 minimum
# ----------------------------------------------------------------------
def test_fig6_good_curve_passes():
    curve = {1: 100.0, 2: 40.0, 4: 35.0, 8: 50.0, 16: 80.0}
    assert check_fig6_minimum(curve) == []


def test_fig6_minimum_too_late_flagged():
    curve = {1: 100.0, 2: 90.0, 4: 60.0, 8: 30.0, 16: 20.0}
    problems = check_fig6_minimum(curve)
    assert any("minimum at h=16" in p for p in problems)


def test_fig6_no_improvement_flagged():
    curve = {1: 10.0, 2: 12.0, 4: 15.0, 16: 30.0}
    problems = check_fig6_minimum(curve, optimum=(1, 16), require_rise=False)
    assert any("no improvement" in p for p in problems)


def test_fig6_no_rise_flagged():
    curve = {1: 100.0, 2: 40.0, 4: 30.0, 16: 30.0}
    assert any("rise" in p for p in check_fig6_minimum(curve))
    assert check_fig6_minimum(curve, require_rise=False) == []


def test_fig6_needs_baseline_and_points():
    with pytest.raises(ConfigError):
        check_fig6_minimum({2: 1.0, 4: 2.0, 8: 3.0})
    with pytest.raises(ConfigError):
        check_fig6_minimum({1: 1.0, 2: 2.0})


# ----------------------------------------------------------------------
# Fig. 7 bands
# ----------------------------------------------------------------------
GOOD_SORT = {1: 0.0, 2: 0.5, 4: 0.6, 16: -0.5}
GOOD_FFT = {1: 0.0, 2: 0.96, 4: 0.97, 16: 0.95}


def test_bands_good_case():
    assert check_efficiency_bands(GOOD_SORT, GOOD_FFT) == []


def test_bands_fft_floor_violation():
    bad_fft = {1: 0.0, 2: 0.5, 4: 0.6, 16: 0.7}
    problems = check_efficiency_bands(GOOD_SORT, bad_fft)
    assert any("below" in p for p in problems)


def test_bands_no_collapse_flagged():
    """Sorting staying as good as FFT at the top thread count fails."""
    too_good_sort = {1: 0.0, 2: 0.95, 4: 0.96, 16: 0.94}
    problems = check_efficiency_bands(too_good_sort, GOOD_FFT)
    assert any("collapse" in p for p in problems)


def test_bands_no_decline_flagged():
    """Sorting must fall from its peak toward 16 threads."""
    monotone_sort = {1: 0.0, 2: 0.3, 4: 0.5, 16: 0.6}
    problems = check_efficiency_bands(monotone_sort, GOOD_FFT)
    assert any("decline" in p for p in problems)


def test_bands_nonzero_baseline_flagged():
    bad = {1: 0.1, 2: 0.5, 4: 0.6}
    problems = check_efficiency_bands(bad, GOOD_FFT)
    assert any("zero" in p for p in problems)


# ----------------------------------------------------------------------
# Fig. 8 components
# ----------------------------------------------------------------------
def mk_panel(rows):
    return {
        h: dict(zip(("computation", "overhead", "communication", "switching"), row))
        for h, row in rows.items()
    }


def test_fig8_good_sort_panel():
    panel = mk_panel({1: (30, 5, 55, 10), 4: (40, 5, 35, 20), 16: (30, 5, 25, 40)})
    assert check_fig8_components(panel, "sort") == []


def test_fig8_sum_violation():
    panel = mk_panel({1: (30, 5, 55, 9), 4: (40, 5, 35, 20), 16: (30, 5, 25, 40)})
    assert any("sum" in p for p in check_fig8_components(panel, "sort"))


def test_fig8_switching_growth_required():
    panel = mk_panel({1: (30, 5, 25, 40), 4: (40, 5, 35, 20), 16: (45, 5, 40, 10)})
    assert any("switching" in p for p in check_fig8_components(panel, "sort"))


def test_fig8_fft_computation_floor():
    panel = mk_panel({1: (50, 5, 35, 10), 4: (50, 5, 25, 20), 16: (40, 5, 25, 30)})
    assert any("computation-dominated" in p for p in check_fig8_components(panel, "fft"))


# ----------------------------------------------------------------------
# Fig. 9 orderings
# ----------------------------------------------------------------------
def mk_switch_panel(rows):
    return {
        h: dict(zip(("remote_read", "iter_sync", "thread_sync"), row))
        for h, row in rows.items()
    }


def test_fig9_good_panel():
    panel = mk_switch_panel({1: (1000, 50, 0), 4: (1000, 200, 30), 16: (1000, 900, 100)})
    assert check_fig9_orderings(panel, "sort", small_problem=True) == []


def test_fig9_remote_read_must_be_flat():
    panel = mk_switch_panel({1: (1000, 50, 0), 4: (1500, 200, 30), 16: (2000, 900, 100)})
    assert any("remote-read" in p for p in check_fig9_orderings(panel, "sort", False))


def test_fig9_iter_sync_must_grow():
    panel = mk_switch_panel({1: (1000, 500, 0), 4: (1000, 300, 30), 16: (1000, 100, 50)})
    assert any("grow" in p for p in check_fig9_orderings(panel, "sort", False))


def test_fig9_fft_thread_sync_must_vanish():
    panel = mk_switch_panel({1: (1000, 100, 0), 16: (1000, 800, 200)})
    assert any("FFT" in p for p in check_fig9_orderings(panel, "fft", False))


def test_fig9_sort_needs_thread_sync():
    panel = mk_switch_panel({1: (1000, 100, 0), 16: (1000, 800, 0)})
    assert any("thread-sync" in p for p in check_fig9_orderings(panel, "sort", False))


def test_fig9_small_problem_crossover():
    panel = mk_switch_panel({1: (1000, 10, 0), 16: (1000, 20, 5)})
    problems = check_fig9_orderings(panel, "sort", small_problem=True)
    assert any("rival" in p for p in problems)
