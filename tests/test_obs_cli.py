"""Observability surface: trace CLI, --timeline, runner trace artifacts."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.obs import validate_perfetto
from repro.runner import JobSpec, clear_memo, run_job, trace_artifact_path, using
from repro.trace import TraceEvent, utilization


def test_cli_trace_subcommand(capsys, tmp_path):
    out_file = tmp_path / "run.perfetto.json"
    main(["trace", "sort", "--pes", "2", "--size", "8", "--threads", "2",
          "--out", str(out_file)])
    out = capsys.readouterr().out
    assert "sort: n=16 P=2 h=2 -> OK" in out
    assert "context switches by kind" in out
    assert "remote_read" in out
    obj = json.loads(out_file.read_text())
    assert validate_perfetto(obj) == []


def test_cli_trace_all_apps(capsys, tmp_path):
    for app, pes in (("fft", 2), ("transpose", 2), ("emc-sort", 2)):
        out_file = tmp_path / f"{app}.perfetto.json"
        main(["trace", app, "--pes", str(pes), "--size", "8", "--threads", "1",
              "--out", str(out_file)])
        capsys.readouterr()
        assert validate_perfetto(json.loads(out_file.read_text())) == []


def test_cli_app_timeline(capsys):
    main(["sort", "--pes", "2", "--size", "8", "--threads", "2", "--timeline"])
    out = capsys.readouterr().out
    assert "sort: n=16 P=2 h=2 -> OK" in out
    assert "PE  0 |" in out
    assert "legend: # burst" in out


def test_cli_app_trace_flag(capsys, tmp_path):
    out_file = tmp_path / "fft.perfetto.json"
    main(["fft", "--pes", "2", "--size", "8", "--threads", "2",
          "--trace", str(out_file)])
    err = capsys.readouterr().err
    assert "wrote" in err
    assert validate_perfetto(json.loads(out_file.read_text())) == []


def test_cli_json_includes_percentiles(capsys):
    main(["sort", "--pes", "2", "--size", "8", "--threads", "1", "--json"])
    payload = json.loads(capsys.readouterr().out)
    net = payload["network"]
    for key in ("p50_latency", "p95_latency", "max_in_flight", "max_port_wait"):
        assert key in net
    assert net["p50_latency"] <= net["p95_latency"] <= net["max_latency"]


def test_runner_trace_dir_writes_artifacts(tmp_path):
    trace_dir = tmp_path / "traces"
    spec = JobSpec(app="sort", n_pes=2, npp=8, h=2)
    clear_memo()
    with using(use_cache=False, trace_dir=str(trace_dir)):
        run_job(spec)
    artifact = trace_artifact_path(str(trace_dir), spec)
    obj = json.loads(open(artifact).read())
    assert validate_perfetto(obj) == []


def test_runner_trace_dir_off_by_default(tmp_path):
    clear_memo()
    with using(use_cache=False):
        run_job(JobSpec(app="sort", n_pes=2, npp=8, h=1))
    assert not list(tmp_path.iterdir())


def test_cached_job_skips_trace_artifact(tmp_path):
    spec = JobSpec(app="sort", n_pes=2, npp=8, h=4)
    clear_memo()
    with using(use_cache=True, cache_dir=str(tmp_path / "cache")):
        run_job(spec)  # cold: cached, no tracing configured
    clear_memo()
    trace_dir = tmp_path / "traces"
    with using(use_cache=True, cache_dir=str(tmp_path / "cache"),
               trace_dir=str(trace_dir)):
        run_job(spec)  # disk hit: executes nothing, writes nothing
    assert not trace_dir.exists()


def test_utilization_accepts_explicit_window():
    events = [TraceEvent(10, 20, "burst"), TraceEvent(20, 30, "idle")]
    # Default: busy 10 over the event span 20.
    assert utilization(events) == pytest.approx(0.5)
    # Explicit window: same busy time over the full run.
    assert utilization(events, start=0, end=40) == pytest.approx(0.25)
    # Bursts are clipped to the window.
    assert utilization(events, start=15, end=25) == pytest.approx(0.5)
    assert utilization(events, start=30, end=30) == 0.0
    assert utilization([], start=0, end=100) == 0.0
