"""Concurrent writers racing on one cache key must never corrupt it.

Satellite of the sweep-service PR: the shared content-addressed cache
is written by pool processes, service batch threads, and independent
CLI runs at once.  These tests race real writers — threads in one
process and separate interpreter processes — on the *same* key and
assert the invariants the design claims: no FileExistsError, no
partial reads, no leaked temp files, exactly one entry.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.runner import JobSpec, ResultCache
from repro.runner.worker import execute_job

SPEC = JobSpec(app="sort", n_pes=2, npp=8, h=1)


@pytest.fixture(scope="module")
def record():
    return execute_job(SPEC)


def tmp_leftovers(root: pathlib.Path) -> list[pathlib.Path]:
    return list(root.rglob("*.tmp"))


def test_threads_racing_one_key_leave_one_clean_entry(tmp_path, record):
    cache = ResultCache(tmp_path)
    rounds_per_thread = 25
    n_threads = 8

    def writer(_):
        for _ in range(rounds_per_thread):
            cache.put(SPEC, record)
            got = cache.get(SPEC)
            assert got is not None, "reader saw a partial entry"
        return True

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        assert all(pool.map(writer, range(n_threads)))

    assert len(cache) == 1
    assert cache.counters["writes"] == n_threads * rounds_per_thread
    assert cache.counters["discards"] == 0
    assert tmp_leftovers(tmp_path) == []
    final = cache.get(SPEC)
    assert final.runtime_seconds == record.runtime_seconds


def test_interleaved_caches_share_one_instance_of_the_entry(tmp_path, record):
    """Two independent ResultCache objects (as two service instances
    would hold) racing the same root converge on identical bytes."""
    one, two = ResultCache(tmp_path), ResultCache(tmp_path)

    def writer(cache):
        for _ in range(25):
            cache.put(SPEC, record)
            assert cache.get(SPEC) is not None
        return cache.path_for(SPEC).read_bytes()

    with ThreadPoolExecutor(max_workers=2) as pool:
        bytes_one, bytes_two = pool.map(writer, (one, two))

    assert bytes_one == bytes_two
    payload = json.loads(bytes_one)
    assert payload["key"] == SPEC.key()
    assert tmp_leftovers(tmp_path) == []


def test_two_processes_executing_one_spec(tmp_path):
    """The full stress from the issue: two separate interpreter
    processes execute the same JobSpec against one cache root
    simultaneously.  Both must succeed, and the survivor entry must be
    readable (no FileExistsError, no partial-read path)."""
    script = (
        "import json, sys\n"
        "from repro.runner.jobs import JobSpec\n"
        "from repro.runner.worker import run_batch_worker\n"
        "spec = JobSpec(app='sort', n_pes=2, npp=8, h=1)\n"
        "outs = run_batch_worker([spec] * 3, None, sys.argv[1], True)\n"
        "print(json.dumps([{'source': o.source, 'error': o.error} for o in outs]))\n"
    )
    repo = pathlib.Path(__file__).parent.parent
    env = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin", "HOME": str(tmp_path)}
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path / "shared-cache")],
            cwd=repo, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(2)
    ]
    outcomes = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        outcomes.append(json.loads(out))

    for per_process in outcomes:
        assert [o["error"] for o in per_process] == [None] * 3
        # First job executes or finds the racer's entry; repeats within
        # the batch are warm by then.
        assert per_process[0]["source"] in ("executed", "cache")
        assert [o["source"] for o in per_process[1:]] == ["cache", "cache"]

    cache = ResultCache(tmp_path / "shared-cache")
    assert len(cache) == 1
    assert tmp_leftovers(tmp_path / "shared-cache") == []
    assert cache.get(SPEC) is not None


def test_corrupt_entry_is_discarded_not_raised(tmp_path, record):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, record)
    path = cache.path_for(SPEC)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert cache.get(SPEC) is None
    assert cache.counters["discards"] == 1
    assert not path.exists()
    # The job simply reruns and repopulates.
    cache.put(SPEC, record)
    assert cache.get(SPEC) is not None
