"""Matching memory: two-token direct matching semantics."""

import pytest

from repro.errors import SchedulerError
from repro.memory import MatchingMemory


def test_first_token_parks():
    mm = MatchingMemory()
    assert mm.offer(1, 0, "a") is None
    assert mm.pending == 1


def test_second_token_matches_in_order():
    mm = MatchingMemory()
    mm.offer(1, 0, "first")
    assert mm.offer(1, 0, "second") == ("first", "second")
    assert mm.pending == 0


def test_distinct_slots_do_not_match():
    mm = MatchingMemory()
    assert mm.offer(1, 0, "a") is None
    assert mm.offer(1, 1, "b") is None
    assert mm.pending == 2


def test_distinct_frames_do_not_match():
    mm = MatchingMemory()
    assert mm.offer(1, 0, "a") is None
    assert mm.offer(2, 0, "b") is None
    assert mm.pending == 2


def test_slot_reusable_after_match():
    mm = MatchingMemory()
    mm.offer(5, 3, 1)
    mm.offer(5, 3, 2)
    assert mm.offer(5, 3, 3) is None  # a fresh generation parks again
    assert mm.offer(5, 3, 4) == (3, 4)


def test_cancel_returns_parked_value():
    mm = MatchingMemory()
    mm.offer(1, 0, "x")
    assert mm.cancel(1, 0) == "x"
    assert mm.pending == 0


def test_cancel_empty_slot_rejected():
    with pytest.raises(SchedulerError):
        MatchingMemory().cancel(1, 0)


def test_statistics():
    mm = MatchingMemory()
    mm.offer(1, 0, "a")
    mm.offer(1, 0, "b")
    mm.offer(2, 0, "c")
    assert mm.parks == 2
    assert mm.matches == 1
