"""Clock and time-conversion unit tests."""

import pytest

from repro.config import CLOCK_HZ
from repro.errors import SimulationError
from repro.sim import Clock, cycles_to_seconds, seconds_to_cycles


def test_clock_starts_at_zero():
    assert Clock().now == 0


def test_clock_custom_start():
    assert Clock(10).now == 10


def test_clock_rejects_negative_start():
    with pytest.raises(SimulationError):
        Clock(-1)


def test_clock_advances_forward():
    c = Clock()
    c.advance_to(5)
    c.advance_to(5)  # same-time advance is legal
    c.advance_to(9)
    assert c.now == 9


def test_clock_rejects_backwards():
    c = Clock(7)
    with pytest.raises(SimulationError):
        c.advance_to(6)


def test_cycle_seconds_is_50ns():
    assert cycles_to_seconds(1) == pytest.approx(50e-9)
    assert CLOCK_HZ == 20_000_000


def test_seconds_cycles_roundtrip():
    for cycles in (0, 1, 17, 12345, 10**9):
        assert seconds_to_cycles(cycles_to_seconds(cycles)) == cycles


def test_now_seconds_tracks_now():
    c = Clock()
    c.advance_to(20_000_000)  # one simulated second at 20 MHz
    assert c.now_seconds == pytest.approx(1.0)
