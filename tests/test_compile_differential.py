"""Differential oracle for the cohort compiler.

The compiled path's bar is byte identity: metrics, ``events_fired``,
serialized RunRecords, and the Perfetto export must all match the
interpreted run exactly — the compiler changes how generators are
driven, never what the machine does.  These tests sweep the fig6/fig7
shape grid (tiny scale) for both front-ends (native ``threadlib``
generators and EM-C programs), exercise the harness's shrinking, and
cover the integration seams: the runner's JobSpec keying, execute_job,
and the CLI flags.
"""

from __future__ import annotations

import pytest

from repro.compile.differential import (
    CompileDifferentialHarness,
    comparable_compile_report,
)
from repro.metrics.serialize import run_record_to_dict
from repro.runner.jobs import JobSpec, machine_fingerprint, spec_from_dict, spec_to_dict
from repro.runner.worker import execute_job

#: The fig6/fig7 grid at test scale: every paper workload (both
#: front-ends) on small machines across the thread sweep's low end.
FIG_GRID = [
    (app, n_pes, npp, h)
    for app in ("sort", "fft", "transpose", "emc-sort")
    for n_pes in (4, 8)
    for npp in (8, 16)
    for h in (1, 2, 4)
]


@pytest.mark.parametrize(
    "app,n_pes,npp,h", FIG_GRID, ids=[f"{a}-P{p}-n{n}-h{h}" for a, p, n, h in FIG_GRID]
)
def test_fig_grid_byte_identical(app, n_pes, npp, h):
    harness = CompileDifferentialHarness(app, seed=0)
    result = harness.check(n_pes=n_pes, n=n_pes * npp, h=h)
    assert result.identical, result.describe()
    # events_fired is part of the comparison: structure, not just metrics.
    assert result.interpreted.events_fired == result.compiled.events_fired


def test_emc_front_end_fully_compiled():
    """The EM-C workload compiles every thread (codegen tier), so the
    occupancy is 1.0 and the compiled path actually ran compiled."""
    harness = CompileDifferentialHarness("emc-sort", seed=0)
    result = harness.check(n_pes=8, n=8 * 16, h=4)
    cohort = result.compiled.cohort
    assert cohort["occupancy"] == 1.0
    assert cohort["emc_codegen_threads"] > 0


def test_native_sort_live_traces_byte_identically():
    """Native sort's merge workers branch on remote data — the pure
    recorder declines them, the live tier traces them for real, and the
    run is *still* byte-identical."""
    harness = CompileDifferentialHarness("sort", seed=0)
    result = harness.check(n_pes=4, n=64, h=2)
    cohort = result.compiled.cohort
    assert cohort["gen_traced_threads"] > 0
    assert cohort["live_traces"] > 0
    assert result.identical


def test_harness_shrink_returns_identical_for_good_shape():
    harness = CompileDifferentialHarness("sort", seed=0)
    result = harness.shrink(dict(n_pes=4, n=32, h=1))
    assert result.identical


def test_run_records_identical_including_events():
    """What figures and the cache consume is equal in full — unlike
    hybrid, the compiled path may not even change the event count."""
    base = JobSpec(app="sort", n_pes=4, npp=16, h=2)
    compiled = JobSpec(app="sort", n_pes=4, npp=16, h=2, compiled=True)
    rec_base = run_record_to_dict(execute_job(base))
    rec_compiled = run_record_to_dict(execute_job(compiled))
    assert rec_base == rec_compiled


def test_jobspec_compiled_keys_distinctly():
    base = JobSpec(app="sort", n_pes=4, npp=16, h=2)
    compiled = JobSpec(app="sort", n_pes=4, npp=16, h=2, compiled=True)
    assert base.key() != compiled.key()
    assert "compiled" in compiled.describe()
    assert "compiled" not in base.describe()
    # The machine fingerprint ignores the flag (execution strategy, not
    # semantics); the JobSpec key carries it instead.
    assert machine_fingerprint(base.config()) == machine_fingerprint(
        compiled.config()
    )
    # Wire round-trip preserves it.
    assert spec_from_dict(spec_to_dict(compiled)) == compiled


def test_cli_compiled_flag(capsys):
    from repro.__main__ import main

    main(["sort", "--pes", "4", "--size", "16", "--threads", "2", "--compiled"])
    out = capsys.readouterr().out
    assert "OK" in out


def test_cli_apps_lists_registry(capsys):
    from repro.__main__ import main

    main(["apps"])
    out = capsys.readouterr().out
    for name in ("sort", "emc-sort", "fft", "transpose"):
        assert name in out
    assert "n_pes, n, h" in out  # the unified signature
    assert "--compiled" in out  # supported flags


def test_cli_apps_json(capsys):
    import json

    from repro.__main__ import main

    main(["apps", "--json"])
    entries = json.loads(capsys.readouterr().out)
    by_name = {e["name"]: e for e in entries}
    assert "bitonic" in by_name["sort"]["aliases"]
    assert by_name["fft"]["signature"][:3] == ["n_pes", "n", "h"]
    assert "--compiled" in by_name["sort"]["flags"]


def test_comparable_report_drops_only_cohort():
    import repro

    report = repro.run("sort", n=32, n_pes=4, h=1, compiled=True)
    comparable = comparable_compile_report(report)
    assert "cohort" not in comparable
    assert "events_fired" in comparable
