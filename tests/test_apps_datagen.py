"""Workload generators: distributions, determinism, validation."""

import numpy as np
import pytest

from repro.apps import datagen, run_bitonic, run_fft
from repro.errors import ProgramError


def test_uniform_ints_deterministic():
    assert datagen.uniform_ints(32, seed=5) == datagen.uniform_ints(32, seed=5)
    assert datagen.uniform_ints(32, seed=5) != datagen.uniform_ints(32, seed=6)


def test_uniform_ints_range():
    vals = datagen.uniform_ints(100, lo=10, hi=20)
    assert all(10 <= v < 20 for v in vals)


def test_gaussian_ints_centered():
    vals = datagen.gaussian_ints(2000, sigma=100.0)
    assert abs(float(np.mean(vals))) < 20.0


def test_nearly_sorted_mostly_ascending():
    vals = datagen.nearly_sorted(200, swap_fraction=0.02)
    inversions = sum(1 for a, b in zip(vals, vals[1:]) if a > b)
    assert inversions < 20
    assert sorted(vals) == list(range(200))


def test_reversed_blocks_structure():
    vals = datagen.reversed_blocks(8, 2)
    assert vals == [7, 6, 5, 4, 3, 2, 1, 0]
    assert sorted(datagen.reversed_blocks(64, 4)) == list(range(64))


def test_zipf_has_duplicates():
    vals = datagen.zipf_ints(500, a=2.0)
    assert len(set(vals)) < len(vals)
    assert min(vals) >= 1


def test_tone_points_dft_is_spike():
    n, k = 32, 5
    tone = datagen.tone_points(n, k=k)
    spectrum = np.abs(np.fft.fft(np.array(tone)))
    assert spectrum.argmax() == k
    others = np.delete(spectrum, k)
    assert spectrum[k] > 100 * others.max()


def test_white_noise_and_chirp_shapes():
    assert len(datagen.white_noise_points(16)) == 16
    chirp = datagen.chirp_points(16)
    assert all(abs(z) < 2.0 for z in chirp)


def test_validation():
    with pytest.raises(ProgramError):
        datagen.uniform_ints(0)
    with pytest.raises(ProgramError):
        datagen.gaussian_ints(0)
    with pytest.raises(ProgramError):
        datagen.nearly_sorted(8, swap_fraction=2.0)
    with pytest.raises(ProgramError):
        datagen.reversed_blocks(10, 3)
    with pytest.raises(ProgramError):
        datagen.zipf_ints(8, a=1.0)
    with pytest.raises(ProgramError):
        datagen.tone_points(8, k=8)


@pytest.mark.parametrize(
    "gen",
    [
        lambda: datagen.uniform_ints(32, seed=1),
        lambda: datagen.gaussian_ints(32, seed=1),
        lambda: datagen.nearly_sorted(32),
        lambda: datagen.reversed_blocks(32, 4),
        lambda: datagen.zipf_ints(32),
    ],
)
def test_every_distribution_sorts_correctly(gen):
    data = gen()
    result = run_bitonic(n_pes=4, n=32, h=2, data=data)
    assert result.sorted_ok


def test_nearly_sorted_saves_reads():
    """Structured input should let early termination skip more mate
    reads than uniform input does."""
    structured = run_bitonic(n_pes=8, n=8 * 32, h=4, data=datagen.nearly_sorted(256))
    uniform = run_bitonic(n_pes=8, n=8 * 32, h=4, data=datagen.uniform_ints(256))
    assert structured.sorted_ok and uniform.sorted_ok
    assert structured.reads_saved_fraction >= uniform.reads_saved_fraction


def test_fft_on_tone():
    result = run_fft(n_pes=4, n=32, h=2, data=datagen.tone_points(32, k=3),
                     comm_stages_only=False)
    assert result.verified
