"""Command-line interface (`python -m repro ...`)."""

import pytest

from repro.__main__ import main


def test_cli_sort(capsys):
    main(["sort", "--pes", "4", "--size", "16", "--threads", "2"])
    out = capsys.readouterr().out
    assert "sort: n=64 P=4 h=2 -> OK" in out
    assert "breakdown:" in out
    assert "remote_read" in out


def test_cli_fft(capsys):
    main(["fft", "--pes", "4", "--size", "16", "--threads", "2"])
    out = capsys.readouterr().out
    assert "fft: n=64 P=4 h=2 -> OK" in out


def test_cli_fig6_panel(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    main(["fig6", "a"])
    out = capsys.readouterr().out
    assert "Fig 6(a)" in out
    assert "communication time" in out


def test_cli_fig7_panel(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    main(["fig7", "c"])
    out = capsys.readouterr().out
    assert "Fig 7(c)" in out and "efficiency" in out


def test_cli_fig8_and_fig9(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    main(["fig8", "a"])
    assert "distribution" in capsys.readouterr().out
    main(["fig9", "c"])
    assert "switches per processor" in capsys.readouterr().out


def test_cli_micro(capsys):
    main(["micro"])
    out = capsys.readouterr().out
    assert "u1" in out and "u2" in out
    assert "1.00 cycles/packet" in out


def test_cli_rejects_unknown_panel():
    with pytest.raises(SystemExit):
        main(["fig6", "z"])


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_json_output(capsys):
    main(["sort", "--pes", "4", "--size", "16", "--threads", "2", "--json"])
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["config"]["n_pes"] == 4
    assert payload["runtime_cycles"] > 0


def test_cli_goldens_check(capsys):
    main(["goldens", "--check", "tests/goldens"])
    assert "goldens match" in capsys.readouterr().out


def test_cli_goldens_requires_mode():
    with pytest.raises(SystemExit):
        main(["goldens"])
