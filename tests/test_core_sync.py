"""GlobalBarrier and OrderToken unit tests (transport-free)."""

import pytest

from repro.core.sync import GlobalBarrier, OrderToken
from repro.core.thread import EMThread, ThreadState
from repro.errors import BarrierError
from repro.memory import FrameTable, SegmentAllocator


def mk_thread(tid=0):
    frames = FrameTable(SegmentAllocator(1024), pe=0)

    def body():
        yield

    return EMThread(tid, 0, frames.create(), body())


# ----------------------------------------------------------------------
# GlobalBarrier
# ----------------------------------------------------------------------
def test_arrive_counts_parties():
    bar = GlobalBarrier(2, [2, 2])
    assert bar.arrive(0) == (0, False)
    assert bar.arrive(0) == (0, True)  # last local party


def test_local_generation_advances():
    bar = GlobalBarrier(1, [1])
    assert bar.arrive(0) == (0, True)
    assert bar.arrive(0) == (1, True)


def test_overrun_rejected():
    bar = GlobalBarrier(1, [1])
    bar.arrive(0)
    bar.arrive(0)  # next generation is fine
    bar.local_arrived[0] = 1  # corrupt to simulate a double arrival
    with pytest.raises(BarrierError, match="overrun"):
        bar.arrive(0)
        bar.arrive(0)


def test_non_member_pe_rejected():
    bar = GlobalBarrier(2, [2, 0])
    with pytest.raises(BarrierError):
        bar.arrive(1)


def test_hub_waits_for_all_members():
    bar = GlobalBarrier(3, [1, 1, 1])
    assert not bar.hub_arrive(0)
    assert not bar.hub_arrive(0)
    assert bar.hub_arrive(0)
    assert bar.generations_completed == 1


def test_hub_generation_mismatch_rejected():
    bar = GlobalBarrier(2, [1, 1])
    with pytest.raises(BarrierError):
        bar.hub_arrive(3)


def test_release_ordering_enforced():
    bar = GlobalBarrier(1, [1])
    bar.release(0, 0)
    with pytest.raises(BarrierError):
        bar.release(0, 0)  # duplicate release
    bar.release(0, 1)
    assert bar.is_open(0, 1)


def test_is_open_monotone():
    bar = GlobalBarrier(1, [1])
    assert not bar.is_open(0, 0)
    bar.release(0, 0)
    assert bar.is_open(0, 0)
    assert not bar.is_open(0, 1)


def test_broadcast_requires_wiring():
    bar = GlobalBarrier(2, [1, 1])
    with pytest.raises(BarrierError, match="not wired"):
        bar.broadcast_release(0)


def test_broadcast_hits_members_only():
    bar = GlobalBarrier(3, [1, 0, 1])
    sent = []
    bar.wire(lambda pe, gen: sent.append((pe, gen)))
    bar.broadcast_release(0)
    assert sent == [(0, 0), (2, 0)]


def test_no_members_rejected():
    with pytest.raises(BarrierError):
        GlobalBarrier(2, [0, 0])


def test_parties_shape_validated():
    with pytest.raises(BarrierError):
        GlobalBarrier(2, [1])
    with pytest.raises(BarrierError):
        GlobalBarrier(2, [1, -1])
    with pytest.raises(BarrierError):
        GlobalBarrier(2, [1, 1], hub=5)


# ----------------------------------------------------------------------
# OrderToken
# ----------------------------------------------------------------------
def test_token_grants_in_sequence():
    tok = OrderToken()
    assert tok.holds(0)
    assert not tok.holds(1)
    assert tok.advance() is None
    assert tok.holds(1)


def test_token_wakes_parked_thread():
    tok = OrderToken()
    th = mk_thread()
    th.transition(ThreadState.RUNNING)
    th.transition(ThreadState.WAIT_TOKEN)
    tok.park(1, th)
    assert tok.waiting == 1
    assert tok.advance() is th
    assert tok.waiting == 0


def test_token_double_park_rejected():
    tok = OrderToken()
    tok.park(1, mk_thread(0))
    with pytest.raises(BarrierError):
        tok.park(1, mk_thread(1))


def test_park_on_granted_turn_rejected():
    tok = OrderToken()
    with pytest.raises(BarrierError):
        tok.park(0, mk_thread())


def test_token_reset():
    tok = OrderToken()
    tok.advance()
    tok.advance()
    tok.reset()
    assert tok.value == 0


def test_token_reset_with_waiters_rejected():
    tok = OrderToken()
    tok.park(2, mk_thread())
    with pytest.raises(BarrierError):
        tok.reset()
