"""Host-side reference algorithms: schedules, DIF FFT, partitions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.reference import (
    bit_reverse_permute,
    compare_split_direction,
    dif_fft_stages,
    ilog2,
    is_power_of_two,
    partition_bounds,
    reference_bitonic_schedule,
)
from repro.errors import ProgramError


def test_power_of_two_predicate():
    assert all(is_power_of_two(1 << k) for k in range(12))
    assert not any(is_power_of_two(x) for x in (0, 3, 6, 12, -4))


def test_ilog2():
    assert ilog2(1) == 0
    assert ilog2(64) == 6
    with pytest.raises(ProgramError):
        ilog2(12)


def test_bitonic_schedule_shape():
    sched = reference_bitonic_schedule(8)
    assert sched == [(0, 0), (1, 1), (1, 0), (2, 2), (2, 1), (2, 0)]
    assert len(reference_bitonic_schedule(64)) == 6 * 7 // 2


def test_compare_split_pairs_are_symmetric():
    """Mates agree on who keeps which half at every schedule point."""
    for P in (2, 4, 8, 16):
        for (i, j) in reference_bitonic_schedule(P):
            for pe in range(P):
                mate, keep_low = compare_split_direction(pe, i, j)
                back, mate_keep_low = compare_split_direction(mate, i, j)
                assert back == pe
                assert keep_low != mate_keep_low


def test_compare_split_host_simulation_sorts():
    """Running the schedule on the host sorts any distributed input."""
    rng = np.random.default_rng(0)
    for P, npp in ((4, 8), (8, 4), (16, 2)):
        lists = [sorted(rng.integers(0, 1000, npp).tolist()) for _ in range(P)]
        for (i, j) in reference_bitonic_schedule(P):
            new = [None] * P
            for pe in range(P):
                mate, keep_low = compare_split_direction(pe, i, j)
                merged = sorted(lists[pe] + lists[mate])
                new[pe] = merged[:npp] if keep_low else merged[npp:]
            lists = new
        flat = [x for lst in lists for x in lst]
        assert flat == sorted(flat)


def test_dif_full_transform_matches_numpy():
    rng = np.random.default_rng(1)
    for n in (2, 8, 64):
        x = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).tolist()
        ours = bit_reverse_permute(dif_fft_stages(x, ilog2(n)))
        ref = np.fft.fft(np.array(x))
        assert np.allclose(ours, ref)


def test_dif_zero_stages_is_identity():
    x = [1 + 2j, 3 - 1j]
    assert dif_fft_stages(x, 0) == x


def test_dif_stage_count_validated():
    with pytest.raises(ProgramError):
        dif_fft_stages([1j] * 8, 4)


def test_bit_reverse_permute_small():
    assert bit_reverse_permute([0, 1, 2, 3]) == [0, 2, 1, 3]
    assert bit_reverse_permute([0, 1, 2, 3, 4, 5, 6, 7]) == [0, 4, 2, 6, 1, 5, 3, 7]


def test_bit_reverse_is_involution():
    x = list(range(16))
    assert bit_reverse_permute(bit_reverse_permute(x)) == x


def test_partition_bounds_balanced():
    bounds = [partition_bounds(10, 3, i) for i in range(3)]
    assert bounds == [(0, 3), (3, 6), (6, 10)]


def test_partition_bounds_validation():
    with pytest.raises(ProgramError):
        partition_bounds(10, 0, 0)
    with pytest.raises(ProgramError):
        partition_bounds(10, 3, 3)


@given(st.integers(1, 500), st.integers(1, 32))
def test_partition_covers_everything_once(total, parts):
    covered = []
    for i in range(parts):
        lo, hi = partition_bounds(total, parts, i)
        covered.extend(range(lo, hi))
        assert hi - lo in (total // parts, total // parts + 1)
    assert covered == list(range(total))


@given(st.integers(1, 5).map(lambda k: 1 << k), st.data())
def test_dif_partial_stages_respect_block_locality(logn_pow, data):
    """After s stages, butterflies with span < n/2^s touch disjoint
    halves — i.e. the first log P stages are exactly the non-local ones."""
    n = logn_pow
    x = [complex(i, -i) for i in range(n)]
    s = data.draw(st.integers(0, ilog2(n)))
    out = dif_fft_stages(x, s)
    assert len(out) == n
