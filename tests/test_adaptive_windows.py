"""Adaptive-lookahead window protocol: matrix bounds, coalescing, accounting.

The tentpole contract (see ``src/repro/sim/parallel.py``): the per-pair
lookahead matrix is a *true lower bound* on cross-shard delivery latency
(so the adaptive protocol is conservative), every off-diagonal entry
dominates the legacy scalar lookahead (so adaptive windows are never
shorter), and switching protocols changes only the barrier schedule —
the simulated outcome, serialised report bytes included, is identical.
``MachineReport.windows`` carries the barrier accounting and must stay
out of the serialised form.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

import repro
from repro import EMX, ExecutionPlan, MachineConfig
from repro.errors import SimulationError
from repro.metrics.report import format_windows
from repro.metrics.serialize import report_to_dict, report_to_json
from repro.sim import Engine, parallel
from repro.network import build_network
from repro.network.sharded import lookahead, lookahead_matrix
from repro.packet import Packet, PacketKind


# ----------------------------------------------------------------------
# The lookahead matrix: dominance over the scalar bound
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_pes", [4, 10, 16, 64])
@pytest.mark.parametrize("shards", [2, 3, 4])
def test_matrix_dominates_scalar_lookahead(n_pes, shards):
    if shards > n_pes:
        pytest.skip("more shards than PEs")
    config = MachineConfig(n_pes=n_pes)
    bounds = parallel.partition(n_pes, shards)
    matrix = lookahead_matrix(config, bounds)
    scalar = lookahead(config)
    off_diag = [
        matrix[i][j] for i in range(shards) for j in range(shards) if i != j
    ]
    assert all(entry >= scalar for entry in off_diag)
    # ... and the scalar bound is exactly the matrix minimum: the legacy
    # protocol is the adaptive one collapsed to its worst pair.
    assert min(off_diag) == scalar


def test_matrix_is_symmetric_in_shape_and_positive():
    config = MachineConfig(n_pes=16)
    bounds = parallel.partition(16, 4)
    matrix = lookahead_matrix(config, bounds)
    assert len(matrix) == 4 and all(len(row) == 4 for row in matrix)
    assert all(entry >= 1 for row in matrix for entry in row)


# ----------------------------------------------------------------------
# The lookahead matrix: a true lower bound on per-pair delivery latency
# ----------------------------------------------------------------------
def _probe_pair_latencies(n_pes, model):
    """Delivery latency of every ordered PE pair, one packet in flight
    at a time (1000-cycle spacing keeps every port idle)."""
    config = MachineConfig(n_pes=n_pes, network_model=model)
    engine = Engine()
    net = build_network(engine, config)
    latencies = {}
    sent_at = {}

    def sink_for(dst):
        def sink(pkt):
            latencies[(pkt.src, pkt.dst)] = engine.now - sent_at[(pkt.src, pkt.dst)]

        return sink

    for pe in range(n_pes):
        net.attach(pe, sink_for(pe))
    pairs = [(s, d) for s in range(n_pes) for d in range(n_pes) if s != d]
    for i, (src, dst) in enumerate(pairs):
        when = i * 1000
        sent_at[(src, dst)] = when
        pkt = Packet(kind=PacketKind.READ_REQ, src=src, dst=dst, data=None)
        engine.schedule_at(when, net.send, pkt)
    engine.run()
    assert len(latencies) == len(pairs)
    return latencies


@pytest.mark.parametrize("model", ["detailed", "analytic"])
@pytest.mark.parametrize("n_pes,shards", [(8, 2), (16, 4), (10, 3)])
def test_matrix_is_a_true_lower_bound_per_shard_pair(model, n_pes, shards):
    """matrix[i][j] never exceeds the best latency any (src in i,
    dst in j) pair actually achieves — the adaptive windows are safe."""
    config = MachineConfig(n_pes=n_pes, network_model=model)
    bounds = parallel.partition(n_pes, shards)
    matrix = lookahead_matrix(config, bounds)
    latencies = _probe_pair_latencies(n_pes, model)

    def shard_of(pe):
        return next(i for i, (lo, hi) in enumerate(bounds) if lo <= pe < hi)

    best = {}
    for (src, dst), lat in latencies.items():
        key = (shard_of(src), shard_of(dst))
        best[key] = min(best.get(key, lat), lat)
    for (i, j), lat in best.items():
        assert matrix[i][j] <= lat, (i, j, matrix[i][j], lat)
    # Tight somewhere: at least one cross-shard pair achieves its bound
    # exactly, so no larger matrix would still be conservative.
    cross = [(i, j) for (i, j) in best if i != j]
    assert any(matrix[i][j] == best[(i, j)] for i, j in cross)


# ----------------------------------------------------------------------
# Protocol comparison: identical bytes, strictly fewer barriers
# ----------------------------------------------------------------------
def _run_with_protocol(protocol, shards, app="sort", n_pes=8, npp=16, h=2):
    with parallel.window_protocol(protocol):
        return repro.run(
            app, n=n_pes * npp, n_pes=n_pes, h=h,
            plan=ExecutionPlan(shards=shards),
        )


@pytest.mark.parametrize("shards", [2, 4])
def test_adaptive_and_scalar_protocols_agree_byte_for_byte(shards):
    adaptive = _run_with_protocol("adaptive", shards)
    scalar = _run_with_protocol("scalar", shards)
    assert report_to_json(adaptive) == report_to_json(scalar)
    # Only the barrier schedule may differ — and adaptive must win.
    assert adaptive.windows["protocol"] == "adaptive"
    assert scalar.windows["protocol"] == "scalar"
    assert adaptive.windows["count"] < scalar.windows["count"]


def test_adaptive_coalesces_idle_gaps():
    report = _run_with_protocol("adaptive", 2)
    assert report.windows["coalesced"] > 0


def test_unknown_protocol_rejected():
    with pytest.raises(SimulationError, match="unknown window protocol"):
        with parallel.window_protocol("optimistic"):
            pass


# ----------------------------------------------------------------------
# Barrier accounting: report.windows shape, serialisation exclusion
# ----------------------------------------------------------------------
def test_windows_section_structure_and_exclusion():
    report = repro.run("sort", n=128, n_pes=8, h=2, plan=ExecutionPlan(shards=2))
    w = report.windows
    assert w is not None
    assert w["shards"] == 2
    assert w["count"] >= 1 and w["coalesced"] >= 0
    assert w["lookahead_min"] >= 1 and w["lookahead_max"] >= w["lookahead_min"]
    assert len(w["per_shard"]) == 2
    for per in w["per_shard"]:
        assert per["windows"] >= 1
        assert per["idle_windows"] >= 0
        assert per["barrier_wall_seconds"] >= 0.0
    # Every shard attends every barrier: per-shard window counts all
    # equal the global round count.
    assert all(per["windows"] == w["count"] for per in w["per_shard"])
    # The diagnostics never leak into the serialised report (cross-K
    # byte-identity depends on it).
    assert "windows" not in report_to_dict(report)


def test_sequential_runs_have_no_windows_section():
    report = repro.run("sort", n=128, n_pes=8, h=2)
    assert report.windows is None


def test_format_windows_renders_summary_and_table():
    report = repro.run("sort", n=128, n_pes=8, h=2, plan=ExecutionPlan(shards=2))
    text = format_windows(report.windows)
    assert "window protocol: adaptive" in text
    assert "shards=2" in text
    assert "barrier_s" in text


# ----------------------------------------------------------------------
# Uneven partitions: 10 PEs across 4 shards, boundary ownership
# ----------------------------------------------------------------------
def test_owns_and_shard_of_agree_on_uneven_partition():
    bounds = parallel.partition(10, 4)
    specs = [parallel.ShardSpec(i, 4, bounds) for i in range(4)]
    for pe in range(10):
        owners = [spec.index for spec in specs if spec.owns(pe)]
        assert len(owners) == 1
        assert specs[0].shard_of(pe) == owners[0]
    with pytest.raises(SimulationError, match="outside the partitioned machine"):
        specs[0].shard_of(10)
    with pytest.raises(SimulationError, match="outside the partitioned machine"):
        specs[0].shard_of(-1)


def _ring_app(*, n_pes, n, h, config=None, obs=None, seed=0):
    """Every PE reads a slot on its clockwise neighbour — guaranteed
    cross-shard traffic over any contiguous partition."""
    machine = EMX(config or MachineConfig(n_pes=n_pes), obs=obs)

    @machine.thread
    def worker(ctx, peer, slot):
        yield ctx.compute(5)
        value = yield ctx.read(ctx.ga(peer, slot))
        yield ctx.write(ctx.ga(ctx.pe, 16 + slot), value)

    for pe in range(n_pes):
        for slot in range(h):
            machine.pes[pe].memory.write(slot, 100 * pe + slot)
            machine.spawn(pe, "worker", (pe + 1) % n_pes, slot)
    report = machine.run()
    return SimpleNamespace(report=report, verified=True)


def test_uneven_ten_pes_four_shards_full_windowed_run():
    """10 PEs / 4 shards: shard sizes (2,3,2,3); every metric identical
    to the sequential run and to other K."""
    base = report_to_dict(parallel.call_app(_ring_app, 1, dict(n_pes=10, n=10, h=2)).report)
    for k in (2, 4):
        result = parallel.call_app(_ring_app, k, dict(n_pes=10, n=10, h=2))
        assert report_to_dict(result.report) == base
        if k == 4:
            w = result.report.windows
            assert w["shards"] == 4
            assert len(w["per_shard"]) == 4
    # The ring actually crossed shards: packets flowed.
    assert base["network"]["packets"] > 0


def test_uneven_partition_memory_lands_on_owning_shard():
    result = parallel.call_app(_ring_app, 4, dict(n_pes=10, n=10, h=1))
    report = result.report
    assert sum(c.threads_finished for c in report.counters) == 10
