"""Segment allocator: first fit, coalescing, invariants (hypothesis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SegmentError
from repro.memory import Segment, SegmentAllocator, SegmentKind


def test_alloc_is_first_fit_from_base():
    a = SegmentAllocator(100)
    s1 = a.alloc(10)
    s2 = a.alloc(20)
    assert (s1.base, s1.size) == (0, 10)
    assert (s2.base, s2.size) == (10, 20)


def test_alloc_respects_arena_base():
    a = SegmentAllocator(50, base=1000)
    assert a.alloc(5).base == 1000


def test_exhaustion_raises():
    a = SegmentAllocator(10)
    a.alloc(10)
    with pytest.raises(SegmentError, match="out of segment memory"):
        a.alloc(1)


def test_free_then_realloc_reuses_hole():
    a = SegmentAllocator(30)
    s1 = a.alloc(10)
    a.alloc(10)
    a.free(s1)
    s3 = a.alloc(10)
    assert s3.base == 0


def test_coalesce_with_both_neighbours():
    a = SegmentAllocator(30)
    s1, s2, s3 = a.alloc(10), a.alloc(10), a.alloc(10)
    a.free(s1)
    a.free(s3)
    a.free(s2)  # middle free merges all three holes
    assert a.free_words == 30
    assert a.alloc(30).size == 30  # one contiguous hole again


def test_double_free_rejected():
    a = SegmentAllocator(10)
    s = a.alloc(5)
    a.free(s)
    with pytest.raises(SegmentError, match="double free"):
        a.free(s)


def test_foreign_segment_rejected():
    a = SegmentAllocator(10)
    a.alloc(5)
    with pytest.raises(SegmentError):
        a.free(Segment(SegmentKind.BUFFER, 0, 3))


def test_zero_size_rejected():
    a = SegmentAllocator(10)
    with pytest.raises(SegmentError):
        a.alloc(0)


def test_owner_of():
    a = SegmentAllocator(20)
    s = a.alloc(8)
    assert a.owner_of(3) == s
    assert a.owner_of(8) is None


def test_segment_contains_and_end():
    s = Segment(SegmentKind.OPERAND, 4, 6)
    assert s.end == 10
    assert s.contains(4) and s.contains(9)
    assert not s.contains(3) and not s.contains(10)


@given(st.data())
def test_allocator_invariants(data):
    """Random alloc/free interleavings keep segments disjoint and
    conserve the arena's total words."""
    capacity = data.draw(st.integers(min_value=16, max_value=256))
    a = SegmentAllocator(capacity)
    live: list[Segment] = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=60))):
        if live and data.draw(st.booleans()):
            seg = live.pop(data.draw(st.integers(0, len(live) - 1)))
            a.free(seg)
        else:
            size = data.draw(st.integers(min_value=1, max_value=capacity // 4))
            try:
                live.append(a.alloc(size))
            except SegmentError:
                pass  # arena full is legal
        # Invariant 1: live segments are pairwise disjoint.
        spans = sorted((s.base, s.end) for s in live)
        for (b1, e1), (b2, _e2) in zip(spans, spans[1:]):
            assert e1 <= b2
        # Invariant 2: free + live == capacity.
        assert a.free_words + sum(s.size for s in live) == capacity
        # Invariant 3: allocator agrees about live segments.
        assert sorted((s.base, s.size) for s in a.live_segments) == sorted(
            (s.base, s.size) for s in live
        )
