"""OBU, processor state inspection, and the 80-PE prototype smoke run."""

from repro import EMX, MachineConfig
from repro.machine import emx80


def test_obu_counts_injections(machine4):
    @machine4.thread
    def writer(ctx):
        for i in range(4):
            yield ctx.write(ctx.ga(1, i), i)

    machine4.spawn(0, "writer")
    machine4.run()
    obu = machine4.pes[0].obu
    assert obu.sent == 4
    assert obu.sent_words == 8


def test_obu_counts_dma_replies(machine4):
    @machine4.thread
    def reader(ctx):
        yield ctx.read(ctx.ga(1, 0))

    machine4.spawn(0, "reader")
    machine4.run()
    # PE 1's OBU carried the DMA reply even though its EXU never ran.
    assert machine4.pes[1].obu.sent == 1


def test_idle_predicate(machine4):
    proc = machine4.pes[0]
    assert proc.idle()

    @machine4.thread
    def worker(ctx):
        yield ctx.compute(50)

    machine4.spawn(0, "worker")
    machine4.run()
    assert proc.idle()


def test_stuck_report_quiet_when_clean(machine4):
    assert machine4.pes[0].stuck_report() is None


def test_stuck_report_describes_live_work(machine4):
    from repro import OrderToken

    tok = OrderToken()

    @machine4.thread
    def waiter(ctx):
        yield ctx.token_wait(tok, 3)

    machine4.spawn(2, "waiter")
    try:
        machine4.run()
    except Exception:
        pass
    report = machine4.pes[2].stuck_report()
    assert report is not None and "PE 2" in report


def test_emx80_prototype_runs():
    """The full 80-processor prototype executes a ring program."""
    m = emx80(memory_words=1 << 12)
    visited = []

    @m.thread
    def hop(ctx, remaining):
        visited.append(ctx.pe)
        yield ctx.compute(5)
        if remaining:
            yield ctx.spawn((ctx.pe + 7) % 80, "hop", remaining - 1)

    m.spawn(0, "hop", 79)
    report = m.run()
    assert len(visited) == 80
    assert report.network.packets >= 79
    # The pad switches (80..127) exist but only PEs terminate packets.
    assert m.network.topology.n_switches == 128


def test_network_mean_hops_statistic(machine16):
    @machine16.thread
    def reader(ctx, mate):
        yield ctx.read(ctx.ga(mate, 0))

    for pe in range(16):
        machine16.spawn(pe, "reader", (pe + 8) % 16)
    report = machine16.run()
    assert 0 < report.network.mean_hops <= machine16.network.topology.tag_bits


def test_packet_counter_on_processor(machine4):
    @machine4.thread
    def reader(ctx):
        yield ctx.read(ctx.ga(1, 0))

    machine4.spawn(0, "reader")
    machine4.run()
    # PE0 handled its own INVOKE spawn packet is local-enqueued (not via
    # deliver); it handled the READ_REPLY.
    assert machine4.pes[0].counters.packets_handled >= 1
