"""Unit tests for the symbolic trace recorder.

The recorder's contract: a thread records if (and only if) its control
flow and effect operands are pure functions of ``(pe, n_pes, args)``
plus pass-through resume values.  Everything else —
shared-state access, computation on remote data, foreign yields —
must abort with :class:`RecordingUnsupported`, never mis-record.
"""

from __future__ import annotations

import pytest

from repro.compile.recorder import (
    MAX_TRACE_OPS,
    RecordedTrace,
    RecordingUnsupported,
    eval_expr,
    record_thread,
)


def _pingpong(ctx, peer, base):
    yield ctx.compute(5)
    value = yield ctx.read(ctx.ga(peer, base))
    yield ctx.write(ctx.ga(ctx.pe, base + 1), value)


def test_records_pure_thread_shape():
    trace = record_thread(_pingpong, 0, 4, (1, 8))
    assert isinstance(trace, RecordedTrace)
    assert trace.func_name == "_pingpong"
    assert trace.n_args == 2
    assert trace.n_effects == 3
    assert trace.n_resumes == 1  # only the read suspends
    methods = [op[1] for op in trace.ops if op[0] == "eff"]
    assert methods == ["compute", "read", "write"]


def test_trace_operands_are_parameterized_not_baked():
    """Another member's bindings evaluate to *its* values, not the
    representative's."""
    trace = record_thread(_pingpong, 0, 4, (1, 8))
    read_op = next(op for op in trace.ops if op[0] == "eff" and op[1] == "read")
    ga_expr = read_op[2][0]
    captured = {}

    def fake_ga(pe, off):
        captured["addr"] = (pe, off)
        return (pe, off)

    eval_expr(ga_expr, 3, 4, (2, 100), [None], fake_ga)
    assert captured["addr"] == (2, 100)


def test_resume_passthrough_is_lazy_slot():
    trace = record_thread(_pingpong, 0, 4, (1, 8))
    write_op = next(op for op in trace.ops if op[0] == "eff" and op[1] == "write")
    value_expr = write_op[2][1]
    assert value_expr == ("resume", 0)
    assert eval_expr(value_expr, 0, 4, (1, 8), ["sentinel"], None) == "sentinel"


def _branchy(ctx, k):
    if ctx.pe == 0:
        yield ctx.compute(10)
    else:
        yield ctx.compute(20)
    yield ctx.compute(k)


def test_guards_split_cohorts_by_branch_outcome():
    trace0 = record_thread(_branchy, 0, 4, (3,))
    assert trace0.admits(0, 4, (3,))
    assert not trace0.admits(1, 4, (3,))  # other branch: other shape
    trace1 = record_thread(_branchy, 1, 4, (3,))
    assert trace1.admits(2, 4, (3,))
    assert not trace1.admits(0, 4, (3,))


def test_admits_rejects_wrong_arity_and_bad_bindings():
    def body(ctx, k):
        if k > 0:
            yield ctx.compute(1)

    trace = record_thread(body, 0, 4, (3,))
    assert trace.admits(0, 4, (1,))
    assert not trace.admits(0, 4, ())
    assert not trace.admits(0, 4, (3, 3))
    # Non-numeric argument where the guard expects an int: reject, not raise.
    assert not trace.admits(0, 4, (object(),))


def _loops(ctx, h):
    for _ in range(h):
        yield ctx.compute(1)


def test_index_pins_loop_bounds():
    """range(h) forces h concrete; members must agree on it exactly."""
    trace = record_thread(_loops, 0, 4, (3,))
    assert trace.n_effects == 3
    assert trace.admits(2, 4, (3,))
    assert not trace.admits(0, 4, (4,))  # different trip count


@pytest.mark.parametrize(
    "body",
    [
        lambda ctx, a: (yield ctx.compute(ctx.mem.read(0))),
        lambda ctx, a: (yield ctx.compute(ctx.state["x"])),
        lambda ctx, a: (yield ctx.compute(ctx.tid)),
    ],
    ids=["mem", "state", "tid"],
)
def test_shared_state_access_aborts(body):
    with pytest.raises(RecordingUnsupported):
        record_thread(body, 0, 4, (1,))


def test_arithmetic_on_resume_aborts():
    def body(ctx, peer):
        value = yield ctx.read(ctx.ga(peer, 0))
        yield ctx.compute(value + 1)

    with pytest.raises(RecordingUnsupported):
        record_thread(body, 0, 4, (1,))


def test_branch_on_resume_aborts():
    def body(ctx, peer):
        value = yield ctx.read(ctx.ga(peer, 0))
        if value > 0:
            yield ctx.compute(1)

    with pytest.raises(RecordingUnsupported):
        record_thread(body, 0, 4, (1,))


def test_address_from_resume_aborts():
    """Data-dependent communication cannot be shape-checked up front."""

    def body(ctx, peer):
        value = yield ctx.read(ctx.ga(peer, 0))
        yield ctx.write(ctx.ga(value, 0), 1)

    with pytest.raises(RecordingUnsupported):
        record_thread(body, 0, 4, (1,))


def test_foreign_yield_aborts():
    def body(ctx, a):
        eff = ctx.compute(5)
        yield eff
        yield eff  # re-yield of a stale marker

    with pytest.raises(RecordingUnsupported):
        record_thread(body, 0, 4, (1,))


def test_non_generator_aborts():
    with pytest.raises(RecordingUnsupported):
        record_thread(lambda ctx, a: None, 0, 4, (1,))


def test_representative_out_of_bounds_address_aborts():
    """A faulting representative is handed to the interpreter so the
    guest sees the real ProgramError, not a recorder artifact."""

    def body(ctx, a):
        yield ctx.read(ctx.ga(99, 0))

    with pytest.raises(RecordingUnsupported):
        record_thread(body, 0, 4, (1,))


def test_trace_length_cap():
    def body(ctx, a):
        while True:
            yield ctx.compute(1)

    with pytest.raises(RecordingUnsupported, match=str(MAX_TRACE_OPS)):
        record_thread(body, 0, 4, (1,))


def test_static_guards_are_resume_free():
    """Opaque resume values abort on comparison, so every recorded
    guard is admission-checkable — the invariant the cohort layer's
    validation sampling design rests on."""
    trace = record_thread(_branchy, 0, 8, (5,))
    assert trace.static_guards  # the pe == 0 branch recorded a guard
    guard_idx = set(trace.static_guards)
    all_guards = {i for i, op in enumerate(trace.ops) if op[0] == "guard"}
    assert guard_idx == all_guards
