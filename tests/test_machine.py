"""Machine facade: spawning, barriers end-to-end, reports, deadlocks."""

import pytest

from repro import EMX, MachineConfig, SwitchKind
from repro.errors import ConfigError, DeadlockError, ProgramError, SimulationError
from repro.machine import emx80, paper_machine, small_machine


def test_spawn_unregistered_rejected(machine4):
    with pytest.raises(ProgramError):
        machine4.spawn(0, "ghost")


def test_spawn_bad_pe_rejected(machine4):
    @machine4.thread
    def worker(ctx):
        yield ctx.compute(1)

    with pytest.raises(ProgramError):
        machine4.spawn(9, "worker")


def test_report_runtime_and_seconds(machine4):
    @machine4.thread
    def worker(ctx):
        yield ctx.compute(200)

    machine4.spawn(0, "worker")
    report = machine4.run()
    assert report.runtime_cycles >= 200
    assert report.runtime_seconds == pytest.approx(report.runtime_cycles * 50e-9)


def test_barrier_end_to_end(machine4):
    """Threads on all PEs rendezvous through the packet-based barrier."""
    bar = machine4.make_barrier(2)
    after = []

    @machine4.thread
    def worker(ctx, t):
        yield ctx.compute(5 * (ctx.pe + 1) * (t + 1))  # staggered arrivals
        yield ctx.barrier_wait(bar)
        after.append((ctx.pe, t))

    for pe in range(4):
        for t in range(2):
            machine4.spawn(pe, "worker", t)
    report = machine4.run()
    assert sorted(after) == [(pe, t) for pe in range(4) for t in range(2)]
    assert bar.generations_completed == 1
    assert report.switches(SwitchKind.ITER_SYNC) > 0


def test_barrier_reused_across_generations(machine4):
    bar = machine4.make_barrier(1)
    log = []

    @machine4.thread
    def worker(ctx):
        for it in range(3):
            yield ctx.compute(ctx.pe + 1)
            yield ctx.barrier_wait(bar)
            log.append((it, ctx.pe))

    for pe in range(4):
        machine4.spawn(pe, "worker")
    machine4.run()
    assert bar.generations_completed == 3
    # No PE reaches iteration k+1 before every PE logged iteration k.
    seen_by_iter = {}
    for it, pe in log:
        seen_by_iter.setdefault(it, []).append(pe)
    positions = {it: i for i, (it, _) in enumerate(log)}
    for it in range(2):
        last_of_it = max(i for i, (x, _) in enumerate(log) if x == it)
        first_of_next = min(i for i, (x, _) in enumerate(log) if x == it + 1)
        assert last_of_it < first_of_next


def test_partial_membership_barrier(machine4):
    bar = machine4.make_barrier([1, 0, 1, 0])
    done = []

    @machine4.thread
    def member(ctx):
        yield ctx.barrier_wait(bar)
        done.append(ctx.pe)

    machine4.spawn(0, "member")
    machine4.spawn(2, "member")
    machine4.run()
    assert sorted(done) == [0, 2]


def test_unreleasable_barrier_hits_cycle_limit():
    """A barrier that can never release keeps its waiters re-checking;
    the run fails loudly at the cycle limit instead of hanging."""
    m = EMX(MachineConfig(n_pes=4, memory_words=1 << 12, max_cycles=200_000))
    bar = m.make_barrier([1, 1, 0, 0])

    @m.thread
    def member(ctx):
        yield ctx.barrier_wait(bar)

    m.spawn(0, "member")  # PE 1 never arrives
    with pytest.raises(SimulationError):
        m.run()


def test_deadlock_detected_for_passive_waiters(machine4):
    """A token turn that never comes leaves a passively parked thread;
    the drained event queue triggers DeadlockError with a diagnosis."""
    from repro import OrderToken

    tok = OrderToken()

    @machine4.thread
    def waiter(ctx):
        yield ctx.token_wait(tok, 5)  # nobody ever advances to 5

    machine4.spawn(0, "waiter")
    with pytest.raises(DeadlockError, match="PE 0"):
        machine4.run()


def test_quiescence_with_no_work(machine4):
    report = machine4.run()
    assert report.runtime_cycles == 0
    assert report.events_fired == 0


def test_presets():
    assert emx80().config.n_pes == 80
    assert paper_machine(16).config.n_pes == 16
    assert paper_machine(64).config.n_pes == 64
    with pytest.raises(ConfigError):
        paper_machine(32)
    assert small_machine().config.n_pes == 4


def test_config_validation():
    with pytest.raises(ConfigError):
        MachineConfig(n_pes=0).validate()
    with pytest.raises(ConfigError):
        MachineConfig(network_model="wormhole").validate()
    with pytest.raises(ConfigError):
        MachineConfig().with_(ibu_fifo_depth=0)


def test_timing_validation():
    from repro import TimingModel

    with pytest.raises(ConfigError):
        TimingModel(pkt_gen=0).validate()
    tm = TimingModel().scaled(reg_save=9)
    assert tm.reg_save == 9
    assert tm.switch_cost == 9 + tm.match_invoke


def test_thread_decorator_returns_function(machine4):
    @machine4.thread
    def worker(ctx):
        yield ctx.compute(1)

    assert worker.__name__ == "worker"
    machine4.spawn(1, "worker")
    report = machine4.run()
    assert report.counters[1].threads_started == 1
    assert report.counters[1].threads_finished == 1
