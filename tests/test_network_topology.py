"""Circular Omega topology: routing correctness (incl. hypothesis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.network import CircularOmegaTopology


def test_switch_count_pads_to_power_of_two():
    assert CircularOmegaTopology(16).n_switches == 16
    assert CircularOmegaTopology(80).n_switches == 128
    assert CircularOmegaTopology(5).n_switches == 8
    assert CircularOmegaTopology(1).n_switches == 2


def test_self_route_is_empty():
    topo = CircularOmegaTopology(16)
    assert topo.route(3, 3) == ()
    assert topo.hop_count(3, 3) == 0
    assert topo.latency_cycles(3, 3) == 1


def test_route_follows_shuffle_exchange():
    topo = CircularOmegaTopology(16)
    for src in range(16):
        for dst in range(16):
            node = src
            for hop in topo.route(src, dst):
                assert hop.node == node
                assert hop.bit in (0, 1)
                node = ((node << 1) | hop.bit) % topo.n_switches
            assert node == dst


def test_hop_count_is_minimal():
    """No shorter shuffle-exchange path exists than the one returned."""
    topo = CircularOmegaTopology(8)
    s = topo.n_switches
    for src in range(8):
        # BFS over the shuffle graph gives ground-truth distances.
        dist = {src: 0}
        frontier = [src]
        while frontier:
            nxt = []
            for node in frontier:
                for bit in (0, 1):
                    succ = ((node << 1) | bit) % s
                    if succ not in dist:
                        dist[succ] = dist[node] + 1
                        nxt.append(succ)
            frontier = nxt
        for dst in range(8):
            assert topo.hop_count(src, dst) == dist[dst]


def test_latency_is_hops_plus_one():
    topo = CircularOmegaTopology(64)
    assert topo.latency_cycles(0, 1) == topo.hop_count(0, 1) + 1


def test_out_of_range_pe_rejected():
    topo = CircularOmegaTopology(8)
    with pytest.raises(RoutingError):
        topo.route(0, 8)
    with pytest.raises(RoutingError):
        topo.hop_count(-1, 0)


def test_mean_hops_bounded_by_stages():
    topo = CircularOmegaTopology(64)
    assert 0 < topo.mean_hops() <= topo.tag_bits


def test_prototype_80_pes_routes_everywhere():
    topo = CircularOmegaTopology(80)
    for src in (0, 41, 79):
        for dst in (0, 17, 79):
            assert 0 <= topo.hop_count(src, dst) <= topo.tag_bits


def test_graph_matches_topology():
    nx = pytest.importorskip("networkx")
    topo = CircularOmegaTopology(8)
    g = topo.graph()
    assert g.number_of_nodes() == topo.n_switches
    assert g.number_of_edges() == 2 * topo.n_switches
    # Every route is a walk in the graph.
    for hop in topo.route(1, 6):
        succ = ((hop.node << 1) | hop.bit) % topo.n_switches
        assert g.has_edge(hop.node, succ)


@given(st.integers(min_value=1, max_value=130), st.data())
def test_routing_reaches_destination_property(n_pes, data):
    topo = CircularOmegaTopology(n_pes)
    src = data.draw(st.integers(0, n_pes - 1))
    dst = data.draw(st.integers(0, n_pes - 1))
    node = src
    for hop in topo.route(src, dst):
        node = ((node << 1) | hop.bit) % topo.n_switches
    assert node == dst
    assert topo.hop_count(src, dst) <= topo.tag_bits
