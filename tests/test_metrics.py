"""Metrics layer: counters, breakdown, overlap, report formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.metrics import (
    Breakdown,
    Bucket,
    PECounters,
    SwitchKind,
    aggregate_breakdown,
    format_table,
    overlap_efficiency,
    overlap_series,
)
from repro.metrics.report import format_series


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
def test_cycle_buckets_accumulate():
    c = PECounters(0)
    c.add_cycles(Bucket.COMPUTATION, 10)
    c.add_cycles(Bucket.COMPUTATION, 5)
    c.add_cycles(Bucket.OVERHEAD, 1)
    assert c.cycles[Bucket.COMPUTATION] == 15
    assert c.total_cycles == 16


def test_negative_charge_rejected():
    with pytest.raises(SimulationError):
        PECounters(0).add_cycles(Bucket.IDLE, -1)


def test_switch_counting():
    c = PECounters(0)
    c.add_switch(SwitchKind.REMOTE_READ, 3)
    c.add_switch(SwitchKind.ITER_SYNC)
    assert c.switches[SwitchKind.REMOTE_READ] == 3
    assert c.total_switches == 4


def test_busy_span_and_accounting_check():
    c = PECounters(0)
    c.note_active(10, 25)
    c.note_active(30, 40)
    assert c.busy_span == 30  # 40 - 10
    c.add_cycles(Bucket.COMPUTATION, 25)
    with pytest.raises(SimulationError, match="accounting mismatch"):
        c.check_accounting()
    c.add_cycles(Bucket.COMMUNICATION, 5)
    c.check_accounting()


def test_accounting_check_noop_when_never_active():
    PECounters(0).check_accounting()  # must not raise


# ----------------------------------------------------------------------
# Breakdown
# ----------------------------------------------------------------------
def test_breakdown_percentages_sum_to_100():
    b = Breakdown(50, 10, 30, 10, idle=7)
    pct = b.percentages()
    assert sum(pct.values()) == pytest.approx(100.0)
    assert pct["computation"] == pytest.approx(50.0)
    assert b.accounted == 100
    assert b.total == 107


def test_breakdown_of_empty_run_rejected():
    with pytest.raises(SimulationError):
        Breakdown(0, 0, 0, 0).fractions()


def test_breakdown_addition():
    b = Breakdown(1, 2, 3, 4, 5) + Breakdown(10, 20, 30, 40, 50)
    assert (b.computation, b.overhead, b.communication, b.switching, b.idle) == (
        11, 22, 33, 44, 55,
    )


def test_aggregate_breakdown_sums_pes():
    c0, c1 = PECounters(0), PECounters(1)
    c0.add_cycles(Bucket.COMPUTATION, 7)
    c1.add_cycles(Bucket.SWITCHING, 3)
    c1.add_cycles(Bucket.IDLE, 2)
    agg = aggregate_breakdown([c0, c1])
    assert agg.computation == 7
    assert agg.switching == 3
    assert agg.idle == 2


# ----------------------------------------------------------------------
# Overlap
# ----------------------------------------------------------------------
def test_overlap_efficiency_basic():
    assert overlap_efficiency(100.0, 65.0) == pytest.approx(0.35)
    assert overlap_efficiency(100.0, 100.0) == 0.0


def test_overlap_negative_past_optimum():
    assert overlap_efficiency(100.0, 120.0) == pytest.approx(-0.2)


def test_overlap_invalid_inputs():
    with pytest.raises(SimulationError):
        overlap_efficiency(0.0, 1.0)
    with pytest.raises(SimulationError):
        overlap_efficiency(1.0, -1.0)


def test_overlap_series_requires_baseline():
    with pytest.raises(SimulationError):
        overlap_series({2: 1.0})


def test_overlap_series_values():
    e = overlap_series({1: 10.0, 2: 4.0, 4: 1.0})
    assert e[1] == 0.0
    assert e[2] == pytest.approx(0.6)
    assert e[4] == pytest.approx(0.9)


@given(st.dictionaries(st.integers(2, 16), st.floats(0, 1e3), min_size=1).map(
    lambda d: {1: 100.0, **d}
))
def test_overlap_series_bounded_above_by_one(series):
    for h, e in overlap_series(series).items():
        assert e <= 1.0


# ----------------------------------------------------------------------
# Report formatting
# ----------------------------------------------------------------------
def test_format_table_alignment_and_rule():
    out = format_table(["h", "value"], [[1, 2.5], [16, 0.25]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5
    assert len({len(line) for line in lines[1:]}) == 1  # all rows align


def test_format_table_scientific_for_small_values():
    out = format_table(["x"], [[0.000012]])
    assert "e-05" in out


def test_format_series():
    out = format_series("comm", {1: 0.5, 2: 0.25}, unit="s")
    assert "comm [s]" in out
    assert out.splitlines()[-1].strip().startswith("2")
