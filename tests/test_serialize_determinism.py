"""Report serialisation and run determinism."""

import json

import pytest

from repro.apps import run_bitonic, run_fft
from repro.metrics import report_to_dict, report_to_json


def test_report_round_trips_through_json():
    r = run_bitonic(n_pes=4, n=32, h=2, seed=3)
    blob = report_to_json(r.report)
    back = json.loads(blob)
    assert back["runtime_cycles"] == r.report.runtime_cycles
    assert back["config"]["n_pes"] == 4
    assert len(back["per_pe"]) == 4
    assert back["per_pe"][0]["cycles"]["computation"] >= 0
    assert abs(sum(back["breakdown_pct"].values()) - 100.0) < 1e-6


def test_report_dict_fields_complete():
    r = run_fft(n_pes=4, n=32, h=2, seed=3)
    d = report_to_dict(r.report)
    for key in (
        "runtime_seconds",
        "comm_seconds",
        "comm_fig6_seconds",
        "events_fired",
        "switches_per_pe",
        "network",
    ):
        assert key in d
    assert d["network"]["packets"] == r.report.network.packets


def test_json_indent():
    r = run_bitonic(n_pes=2, n=16, h=1, seed=0)
    assert "\n" in report_to_json(r.report, indent=2)


# ----------------------------------------------------------------------
# Determinism: the whole simulator is seed-reproducible.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("runner", [run_bitonic, run_fft])
def test_same_seed_same_cycles(runner):
    a = runner(n_pes=4, n=64, h=3, seed=17)
    b = runner(n_pes=4, n=64, h=3, seed=17)
    assert a.report.runtime_cycles == b.report.runtime_cycles
    assert a.report.events_fired == b.report.events_fired
    assert report_to_dict(a.report)["per_pe"] == report_to_dict(b.report)["per_pe"]
    assert a.output == b.output


def test_different_seed_different_data():
    a = run_bitonic(n_pes=4, n=64, h=2, seed=1)
    b = run_bitonic(n_pes=4, n=64, h=2, seed=2)
    assert a.output != b.output  # astronomically unlikely to collide


def test_golden_runtime_regression():
    """A pinned end-to-end cycle count: changes to any timing path show
    up here first.  Update deliberately when the model changes."""
    r = run_bitonic(n_pes=4, n=32, h=2, seed=0)
    assert r.sorted_ok
    # Pin to a band rather than one value so harmless accounting tweaks
    # (not timing changes) don't thrash the suite.
    assert 900 <= r.report.runtime_cycles <= 3_000
