"""Engine run-loop semantics: scheduling, limits, deadlock detection."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Engine


def test_schedule_and_run_in_order():
    e = Engine()
    log = []
    e.schedule(10, log.append, "b")
    e.schedule(5, log.append, "a")
    e.schedule(10, log.append, "c")
    end = e.run()
    assert log == ["a", "b", "c"]
    assert end == 10


def test_events_can_schedule_more_events():
    e = Engine()
    log = []

    def chain(depth):
        log.append(depth)
        if depth < 3:
            e.schedule(2, chain, depth + 1)

    e.schedule(0, chain, 0)
    end = e.run()
    assert log == [0, 1, 2, 3]
    assert end == 6


def test_schedule_at_past_rejected():
    e = Engine()
    e.schedule(5, lambda: None)
    e.run()
    with pytest.raises(SimulationError):
        e.schedule_at(3, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1, lambda: None)


def test_run_until_pauses_without_error():
    e = Engine()
    fired = []
    e.schedule(5, fired.append, 1)
    e.schedule(50, fired.append, 2)
    end = e.run(until=10)
    assert fired == [1]
    assert end == 10
    e.run()
    assert fired == [1, 2]


def test_max_cycles_exceeded_raises():
    e = Engine(max_cycles=100)

    def rescheduler():
        e.schedule(60, rescheduler)

    e.schedule(0, rescheduler)
    with pytest.raises(SimulationError, match="max_cycles"):
        e.run()


def test_quiescence_watcher_raises_deadlock():
    e = Engine()
    e.quiescence_watcher = lambda: "2 threads stuck"
    e.schedule(1, lambda: None)
    with pytest.raises(DeadlockError, match="2 threads stuck"):
        e.run()


def test_quiescence_watcher_clean_exit():
    e = Engine()
    e.quiescence_watcher = lambda: None
    e.schedule(1, lambda: None)
    assert e.run() == 1


def test_cancel_scheduled_event():
    e = Engine()
    fired = []
    h = e.schedule(5, fired.append, "x")
    e.cancel(h)
    e.schedule(6, fired.append, "y")
    e.run()
    assert fired == ["y"]


def test_step_fires_one_event():
    e = Engine()
    log = []
    e.schedule(1, log.append, 1)
    e.schedule(2, log.append, 2)
    assert e.step() and log == [1]
    assert e.step() and log == [1, 2]
    assert not e.step()


def test_events_fired_counter():
    e = Engine()
    for i in range(7):
        e.schedule(i, lambda: None)
    e.run()
    assert e.events_fired == 7


def test_invalid_max_cycles():
    with pytest.raises(SimulationError):
        Engine(max_cycles=0)
