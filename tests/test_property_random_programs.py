"""Property test: arbitrary well-formed guest programs behave.

Hypothesis generates random multi-threaded programs out of the effect
vocabulary (compute, remote read/write, block and pair reads, spawns,
explicit switches) and the suite asserts the machine-wide invariants:

* the run terminates (no deadlock, no runaway),
* every spawned thread starts and finishes,
* cycle buckets tile each processor's busy window exactly (checked by
  ``run()`` itself),
* no packets remain in flight,
* remote writes land: memory equals a host-side replay of the program.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EMX, MachineConfig

N_PES = 3
MEM = 1 << 10

# One action = (op, operands...) chosen from a closed vocabulary.
_action = st.one_of(
    st.tuples(st.just("compute"), st.integers(1, 50)),
    st.tuples(st.just("read"), st.integers(0, N_PES - 1), st.integers(0, 15)),
    st.tuples(
        st.just("read_pair"),
        st.integers(0, N_PES - 1),
        st.integers(0, 15),
        st.integers(16, 31),
    ),
    st.tuples(st.just("read_block"), st.integers(0, N_PES - 1), st.integers(1, 6)),
    st.tuples(
        st.just("write"),
        st.integers(0, N_PES - 1),
        st.integers(32, 63),
        st.integers(-100, 100),
    ),
    st.tuples(st.just("switch")),
)

_thread_program = st.lists(_action, min_size=1, max_size=12)
_machine_program = st.lists(
    st.tuples(st.integers(0, N_PES - 1), _thread_program), min_size=1, max_size=6
)


def _runner(ctx, actions):
    for action in actions:
        op = action[0]
        if op == "compute":
            yield ctx.compute(action[1])
        elif op == "read":
            yield ctx.read(ctx.ga(action[1], action[2]))
        elif op == "read_pair":
            yield ctx.read_pair(ctx.ga(action[1], action[2]), ctx.ga(action[1], action[3]))
        elif op == "read_block":
            yield ctx.read_block(ctx.ga(action[1], 0), action[2])
        elif op == "write":
            yield ctx.write(ctx.ga(action[1], action[2]), action[3])
        elif op == "switch":
            yield ctx.switch()


@settings(max_examples=40, deadline=None)
@given(_machine_program)
def test_random_programs_terminate_and_account(program):
    machine = EMX(MachineConfig(n_pes=N_PES, memory_words=MEM, max_cycles=2_000_000))
    machine.register(_runner)
    for pe, actions in program:
        machine.spawn(pe, "_runner", actions)

    report = machine.run()  # run() enforces exact bucket accounting

    spawned = len(program)
    assert sum(c.threads_started for c in report.counters) == spawned
    assert sum(c.threads_finished for c in report.counters) == spawned
    assert machine.live_threads == 0
    assert machine.network.in_flight == 0
    for proc in machine.pes:
        assert proc.continuations.outstanding == 0
        assert proc.frames.live_count == 0
        assert proc.ibu.queued == 0

    # Remote writes land with last-writer-wins per (pe, offset) in
    # program order only when a single thread writes; across threads we
    # assert the weaker invariant: every written cell holds SOME value
    # written to it by SOME thread.
    written: dict[tuple[int, int], set[int]] = {}
    for _pe, actions in program:
        for action in actions:
            if action[0] == "write":
                written.setdefault((action[1], action[2]), set()).add(action[3])
    for (pe, off), values in written.items():
        assert machine.pes[pe].memory.read(off) in values
