"""The live-tracing cohort tier: recording through data-dependent
control flow, cross-run trace registry, vectorized operand tables,
fused effects and the compiled observability goldens.

The pure symbolic recorder (:mod:`repro.compile.recorder`) declines
native bitonic/FFT threads — their effect shapes depend on runtime
data.  The live tier records the representative's *actual* execution
instead and replays later threads from the trace, so these tests pin
the whole ladder: cold run traces, warm run replays, occupancy reaches
1.0, and every step stays byte-identical to the interpreter.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import MachineConfig
from repro.apps.bitonic import run_bitonic
from repro.compile import live
from repro.compile.live import clear_registry, lookup_traces, register_trace
from repro.metrics.serialize import report_to_dict

SHAPE = dict(n=64, n_pes=4, h=2)


def _run(app="sort", compiled=True, **over):
    kwargs = {**SHAPE, **over}
    cfg = MachineConfig(compiled=True) if compiled else None
    return repro.run(app, config=cfg, **kwargs)


def _sans_cohort(report) -> dict:
    d = report_to_dict(report)
    d.pop("cohort", None)
    return d


# ----------------------------------------------------------------------
# The warm-up ladder: trace cold, replay warm
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", ["sort", "fft"])
def test_cold_run_traces_and_stays_identical(app):
    compiled = _run(app)
    cohort = compiled.cohort
    assert cohort["gen_traced_threads"] > 0
    assert cohort["live_traces"] > 0
    assert cohort["record_failures"] == 0
    assert _sans_cohort(compiled) == _sans_cohort(_run(app, compiled=False))


@pytest.mark.parametrize("app", ["sort", "fft"])
def test_warm_runs_reach_full_occupancy(app):
    for _ in range(3):
        report = _run(app)
    cohort = report.cohort
    assert cohort["occupancy"] == 1.0
    assert cohort["gen_replayed_threads"] == 4 * 2  # every guest thread
    assert cohort["gen_interpreted_threads"] == 0
    assert cohort["gen_traced_threads"] == 0  # registry already has them
    assert _sans_cohort(report) == _sans_cohort(_run(app, compiled=False))


def test_every_member_validates_under_tight_stride(monkeypatch):
    """Lockstep validation is itself byte-identical: with the sampling
    stride tightened, warm replays shadow the real interpreter and the
    report still matches the interpreted run."""
    monkeypatch.setattr("repro.compile.cohort.VALIDATE_STRIDE", 2)
    for _ in range(3):
        report = _run("sort")
    cohort = report.cohort
    assert cohort["gen_validated_threads"] > 0
    assert cohort["bailouts"] == 0 and cohort["replay_divergences"] == 0
    assert _sans_cohort(report) == _sans_cohort(_run("sort", compiled=False))


# ----------------------------------------------------------------------
# numpy operand tables: optional, never load-bearing
# ----------------------------------------------------------------------
def test_no_numpy_fallback_degrades_not_crashes(monkeypatch):
    monkeypatch.setattr(live, "HAVE_NUMPY", False)
    for _ in range(3):
        report = _run("sort")
    cohort = report.cohort
    assert cohort["numpy"] is False
    assert cohort["occupancy"] == 1.0
    assert _sans_cohort(report) == _sans_cohort(_run("sort", compiled=False))


def test_numpy_and_scalar_tables_agree(monkeypatch):
    """The vectorized admission/param path is an optimisation only:
    with a warm registry, numpy-on and numpy-off runs produce the same
    report and the same tier assignment."""
    for _ in range(3):
        _run("sort")
    vectorized = _run("sort")
    with monkeypatch.context() as mp:
        mp.setattr(live, "HAVE_NUMPY", False)
        scalar = _run("sort")
    dv, ds = report_to_dict(vectorized), report_to_dict(scalar)
    cv, cs = dv.pop("cohort"), ds.pop("cohort")
    assert dv == ds
    assert cv.pop("numpy") is True and cs.pop("numpy") is False
    assert cv == cs


# ----------------------------------------------------------------------
# The cross-run trace registry
# ----------------------------------------------------------------------
def test_registry_dedups_and_clears():
    _run("sort")
    funcs = [(func, n_args, traces)
             for func, per in live._REGISTRY.items()
             for n_args, traces in per.items() if traces]
    assert funcs
    func, n_args, traces = funcs[0]
    before = len(lookup_traces(func, n_args))
    assert register_trace(traces[0]) is False  # identical shape: dropped
    assert len(lookup_traces(func, n_args)) == before
    clear_registry()
    assert lookup_traces(func, n_args) == []


def test_admission_memo_short_circuits_warm_scans():
    # Run 0 records, run 1 replays via the full guard scan (populating
    # the memo), run 2 admits every member off the memo — one trace's
    # guards per member instead of a scan over every registered trace.
    for _ in range(2):
        _run("sort")
    scan = _run("sort").cohort["guards_checked"]
    memo_hit = _run("sort").cohort["guards_checked"]
    assert 0 < memo_hit <= scan
    assert any(live._ADMIT_MEMO.values())
    # Memoized admission must pick exactly what the scan picks.
    for func, per in live._REGISTRY.items():
        for n_args, traces in per.items():
            members = [
                (pe, args) for (pe, args) in live._ADMIT_MEMO.get(func, {})
            ]
            rows = [(pe, 4, args, None) for pe, args in members]
            assigned, _ = live.assign_traces_memo(func, traces, rows)
            assert assigned == live.assign_traces(traces, rows)
    clear_registry()
    assert not live._ADMIT_MEMO


def test_registry_caps_per_key(monkeypatch):
    _run("sort")
    func, per = next(iter(live._REGISTRY.items()))
    n_args, traces = next(iter(per.items()))
    monkeypatch.setattr(live, "MAX_TRACES_PER_KEY", len(traces))
    clone = traces[0]
    # A *different* shape (mutated ops) still bounces off the cap.
    mutated = live.LiveTrace.__new__(live.LiveTrace)
    for slot in live.LiveTrace.__slots__:
        setattr(mutated, slot, getattr(clone, slot))
    mutated.ops = tuple(clone.ops) + (("nop",),)
    assert register_trace(mutated) is False


# ----------------------------------------------------------------------
# Fused effects: one yield for Compute + RemoteRead, same accounting
# ----------------------------------------------------------------------
def _drive(gen, replies):
    """Collect the effect stream of a guest generator, answering each
    suspending effect from ``replies``."""
    from repro.core.effects import FusedRead, FusedReadPair

    effects, send = [], None
    it = iter(replies)
    try:
        while True:
            eff = gen.send(send)
            effects.append(eff)
            send = next(it) if type(eff) in (FusedRead, FusedReadPair) else None
    except StopIteration:
        return effects


class _FakeMem:
    size = 4096
    _watches = ()
    reads = 0
    writes = 0

    def __init__(self):
        self._words: dict = {}


class _FakeCtx:
    pe = 0
    n_pes = 4

    def __init__(self):
        self.mem = _FakeMem()
        self.state: dict = {}


@pytest.mark.parametrize("source,reply,fused", [
    ("thread f(mate) { var v = rread(mate, 8); mem[0] = v; }", 7, "FusedRead"),
    ("thread f(mate) { var p = rread2(mate, 8, 9); mem[0] = at(p, 0); }",
     (3, 4), "FusedReadPair"),
])
def test_emc_tiers_fuse_reads_identically(source, reply, fused):
    """Both EM-C compile tiers (trace VM and python codegen) emit the
    fused Compute+read effect, and their streams are equal effect for
    effect."""
    from repro.compile.codegen import codegen_thread
    from repro.compile.lower_emc import lower_thread
    from repro.compile.trace import run_trace
    from repro.emc import EmcCosts, compile_program

    compiled = compile_program(source)
    tdef = compiled.ast.threads["f"]
    prog = lower_thread(compiled.ast, tdef, compiled.env, compiled.costs)
    fn = codegen_thread(compiled.ast, tdef, compiled.env, compiled.costs)

    traced = _drive(run_trace(prog, _FakeCtx(), (1,)), [reply])
    coded = _drive(fn(_FakeCtx(), 1), [reply])
    assert [type(e).__name__ for e in traced] == \
           [type(e).__name__ for e in coded]
    assert traced == coded
    assert fused in {type(e).__name__ for e in traced}
    addr = next(e for e in traced if type(e).__name__ == fused)
    assert (addr.addr_a.pe if fused == "FusedReadPair" else addr.addr.pe) == 1


# ----------------------------------------------------------------------
# Observability: Perfetto golden and the shard-merge round trip
# ----------------------------------------------------------------------
def _recorded_compiled_run():
    from repro.obs import EventBus, RingRecorder

    bus = EventBus()
    rec = RingRecorder(bus)
    run_bitonic(n_pes=2, n=16, h=2, seed=0, obs=bus,
                config=MachineConfig(compiled=True))
    return rec.events


def test_perfetto_compiled_golden_byte_identical(tmp_path):
    import pathlib

    from repro.obs import write_perfetto

    events = _recorded_compiled_run()
    path = write_perfetto(tmp_path / "out.perfetto.json", events, n_pes=2)
    golden = pathlib.Path(__file__).parent / "goldens" / \
        "sort_p2_n16_h2.compiled.perfetto.json"
    assert path.read_bytes() == golden.read_bytes()
    trace = json.loads(path.read_text())
    assert any(ev.get("cat") == "cohort" for ev in trace["traceEvents"])


def test_cohort_events_round_trip_through_shard_merge():
    """COHORT diagnostics survive the sharded-run merge path unchanged:
    any partition of the stream merges to the same sequence, and the
    merged stream exports to byte-identical Perfetto JSON."""
    from repro.obs.events import CohortEvent
    from repro.obs.merge import merge_shard_events
    from repro.obs.perfetto import to_perfetto

    events = _recorded_compiled_run()
    assert any(type(ev) is CohortEvent for ev in events)
    whole = merge_shard_events([list(events)], [{}])
    split = merge_shard_events(
        [list(events[0::2]), list(events[1::2])], [{}, {}]
    )
    assert whole == split
    assert [ev for ev in whole if type(ev) is CohortEvent] == \
           sorted((ev for ev in events if type(ev) is CohortEvent),
                  key=lambda ev: (ev.t, ev.pe, ev.kind, ev.name, ev.n))
    a = json.dumps(to_perfetto(whole, n_pes=2), sort_keys=True)
    b = json.dumps(to_perfetto(split, n_pes=2), sort_keys=True)
    assert a == b


# ----------------------------------------------------------------------
# Diagnostics formatting
# ----------------------------------------------------------------------
def test_format_cohort_lists_bail_reasons():
    from repro.metrics.report import format_cohort

    _run("sort")  # ensure a real summary's keys match the formatter
    real = _run("sort").cohort
    text = format_cohort(real)
    assert "cohorts: occupancy" in text

    synthetic = dict(real)
    synthetic.update(record_failures=3,
                     record_failure_reasons={"host-mutation": 2, "other": 1})
    text = format_cohort(synthetic)
    assert "record bails (3): host-mutation x2, other x1" in text


def test_format_cohort_marks_missing_numpy():
    from repro.metrics.report import format_cohort

    cohort = dict(_run("sort").cohort)
    cohort["numpy"] = False
    assert "[no numpy: scalar tables]" in format_cohort(cohort)
