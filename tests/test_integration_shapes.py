"""Integration: the paper's qualitative results hold on moderate runs.

These use larger machines than the unit tests (P=16, n/P=128) so the
steady-state behaviour dominates; they are the in-suite versions of the
benchmark harness's full checks.
"""

import pytest

from repro.experiments import (
    check_efficiency_bands,
    check_fig6_minimum,
    check_fig8_components,
    check_fig9_orderings,
    run_app,
    sweep_threads,
)
from repro.metrics.overlap import overlap_series

P = 16
NPP = 128
THREADS = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def sort_sweep():
    return sweep_threads("sort", P, NPP, THREADS)


@pytest.fixture(scope="module")
def fft_sweep():
    return sweep_threads("fft", P, NPP, THREADS)


def test_fig6_sort_minimum_at_few_threads(sort_sweep):
    curve = {h: r.comm_seconds for h, r in sort_sweep.items()}
    assert check_fig6_minimum(curve) == []


def test_fig6_fft_deep_valley(fft_sweep):
    curve = {h: r.comm_seconds for h, r in fft_sweep.items()}
    assert curve[2] < 0.2 * curve[1]
    assert min(curve, key=curve.__getitem__) >= 2


def test_fig7_efficiency_bands(sort_sweep, fft_sweep):
    sort_eff = overlap_series({h: r.comm_seconds for h, r in sort_sweep.items()})
    fft_eff = overlap_series({h: r.comm_seconds for h, r in fft_sweep.items()})
    assert check_efficiency_bands(sort_eff, fft_eff) == []


def test_fft_overlaps_over_95_percent():
    """The paper's headline FFT number (needs the larger problem size —
    at small sizes the per-iteration barrier cost is proportionally
    bigger, exactly the size effect Fig. 6(d) shows for n=512K)."""
    sweep = sweep_threads("fft", P, 256, (1, 2, 4))
    eff = overlap_series({h: r.comm_seconds for h, r in sweep.items()})
    assert max(eff[h] for h in (2, 4)) > 0.95


def test_fig8_sort_components(sort_sweep):
    panel = {h: r.breakdown() for h, r in sort_sweep.items()}
    assert check_fig8_components(panel, "sort") == []


def test_fig8_fft_computation_dominates(fft_sweep):
    panel = {h: r.breakdown() for h, r in fft_sweep.items()}
    assert check_fig8_components(panel, "fft") == []
    assert panel[4]["computation"] > 80.0


def test_fig9_sort_orderings(sort_sweep):
    from repro.experiments.fig9 import SWITCH_KINDS

    panel = {
        h: {k.value: r.switches(k) for k in SWITCH_KINDS} for h, r in sort_sweep.items()
    }
    assert check_fig9_orderings(panel, "sort", small_problem=False) == []


def test_fig9_fft_orderings(fft_sweep):
    from repro.experiments.fig9 import SWITCH_KINDS

    panel = {
        h: {k.value: r.switches(k) for k in SWITCH_KINDS} for h, r in fft_sweep.items()
    }
    assert check_fig9_orderings(panel, "fft", small_problem=False) == []


def test_ablation_em4_read_service_hurts():
    """A1: EM-4-style EXU read servicing slows the same workload."""
    emx = run_app("sort", P, 32, 4)
    em4 = run_app("sort", P, 32, 4, em4_mode=True)
    assert em4.verified
    assert em4.runtime_seconds > emx.runtime_seconds


def test_ablation_network_models_agree():
    """A3: analytic vs detailed network differ by only a few percent at
    the paper's traffic levels."""
    det = run_app("fft", P, 32, 4, network_model="detailed")
    ana = run_app("fft", P, 32, 4, network_model="analytic")
    assert ana.verified
    ratio = ana.runtime_seconds / det.runtime_seconds
    # The models agree to a few percent at the paper's traffic levels;
    # reordering effects mean neither strictly bounds the other.
    assert 0.9 < ratio < 1.1


def test_ablation_saavedra_agrees_with_simulated_fft():
    """A2: the analytic model predicts FFT's near-total overlap."""
    from repro.analysis import SaavedraModel

    model = SaavedraModel.for_fft(latency=30)
    assert model.overlap_efficiency(2) == 1.0  # analytic prediction
    rec1 = run_app("fft", P, 64, 1)
    rec2 = run_app("fft", P, 64, 2)
    # Compare against the pure latency-masking (idle) communication —
    # the quantity the analytic model actually predicts.
    measured = 1.0 - rec2.comm_idle_seconds / rec1.comm_idle_seconds
    assert measured > 0.9
