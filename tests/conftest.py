"""Shared fixtures for the EM-X reproduction test suite."""

from __future__ import annotations

import pytest

from repro import EMX, MachineConfig


@pytest.fixture
def machine4() -> EMX:
    """A 4-processor machine with small memory, detailed network."""
    return EMX(MachineConfig(n_pes=4, memory_words=1 << 16))


@pytest.fixture
def machine16() -> EMX:
    """A 16-processor machine (one of the paper's platforms)."""
    return EMX(MachineConfig(n_pes=16, memory_words=1 << 16))


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    """Default every test to the tiny experiment scale."""
    monkeypatch.setenv("REPRO_SCALE", "tiny")
