"""Shared fixtures for the EM-X reproduction test suite."""

from __future__ import annotations

import os

import pytest

from repro import EMX, MachineConfig


@pytest.fixture
def machine4() -> EMX:
    """A 4-processor machine with small memory, detailed network."""
    return EMX(MachineConfig(n_pes=4, memory_words=1 << 16))


@pytest.fixture
def machine16() -> EMX:
    """A 16-processor machine (one of the paper's platforms)."""
    return EMX(MachineConfig(n_pes=16, memory_words=1 << 16))


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    """Default every test to the tiny experiment scale."""
    monkeypatch.setenv("REPRO_SCALE", "tiny")


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the runner's disk cache at a session-temporary root.

    Keeps the suite hermetic: no test reads results a developer's
    ``~/.cache/repro`` happens to hold, and no test pollutes it.
    """
    root = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield root
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(autouse=True)
def _cold_trace_registry():
    """Clear the cross-run live-trace registry around every test.

    The registry is deliberately process-global (warm runs skip
    re-tracing), which would otherwise make cohort counters depend on
    test execution order.
    """
    from repro.compile.live import clear_registry

    clear_registry()
    yield
    clear_registry()


@pytest.fixture(autouse=True)
def _default_runner_options():
    """Reset the process-global runner options around every test.

    CLI and runner tests call ``configure(...)``; without this, a
    leaked ``jobs=4`` or ``use_cache=False`` would silently change how
    later tests execute their sweeps.
    """
    from repro.runner import reset_options

    reset_options()
    yield
    reset_options()
