"""The execution engine: job hashing, disk cache, pool, orchestration."""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.errors import ConfigError, ProgramError, SimulationError
from repro.experiments.common import clear_cache
from repro.metrics.serialize import run_record_from_dict, run_record_to_dict
from repro.runner import (
    JobSpec,
    PoolStatus,
    ResultCache,
    RunnerOptions,
    clear_memo,
    dedupe,
    expand_figures,
    expand_sweep,
    execute_job,
    get_options,
    machine_fingerprint,
    reset_stats,
    run_job,
    run_jobs,
    run_specs,
    stats,
    sweep_threads,
    using,
)
from repro.runner import jobs as jobs_mod

SPEC = JobSpec(app="sort", n_pes=4, npp=8, h=2)


# ----------------------------------------------------------------------
# JobSpec hashing
# ----------------------------------------------------------------------
def test_key_is_stable_and_sensitive():
    assert SPEC.key() == JobSpec(app="sort", n_pes=4, npp=8, h=2).key()
    distinct = {
        SPEC.key(),
        JobSpec(app="fft", n_pes=4, npp=8, h=2).key(),
        JobSpec(app="sort", n_pes=8, npp=8, h=2).key(),
        JobSpec(app="sort", n_pes=4, npp=16, h=2).key(),
        JobSpec(app="sort", n_pes=4, npp=8, h=4).key(),
        JobSpec(app="sort", n_pes=4, npp=8, h=2, seed=1).key(),
        JobSpec(app="sort", n_pes=4, npp=8, h=2, em4_mode=True).key(),
        JobSpec(app="sort", n_pes=4, npp=8, h=2, network_model="analytic").key(),
    }
    assert len(distinct) == 8


def test_key_changes_on_schema_bump(monkeypatch):
    before = SPEC.key()
    monkeypatch.setattr(jobs_mod, "SCHEMA_VERSION", jobs_mod.SCHEMA_VERSION + 1)
    assert SPEC.key() != before


def test_machine_fingerprint_covers_timing():
    base = SPEC.config()
    assert machine_fingerprint(base) == machine_fingerprint(SPEC.config())
    retimed = base.with_(timing=base.timing.scaled(reg_save=7))
    assert machine_fingerprint(retimed) != machine_fingerprint(base)


def test_spec_validation():
    with pytest.raises(ProgramError, match="unknown app"):
        JobSpec(app="quicksort", n_pes=4, npp=8, h=1).validate()
    with pytest.raises(ConfigError):
        JobSpec(app="sort", n_pes=0, npp=8, h=1).validate()


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
def test_expand_sweep_skips_oversized_h():
    specs = expand_sweep("sort", 4, 8, (1, 2, 16))
    assert [s.h for s in specs] == [1, 2]


def test_expand_figures_dedups_shared_sweeps():
    from repro.experiments import default_scale

    scale = default_scale()
    all_figs = expand_figures(scale, (1, 2))
    fig6_only = expand_figures(scale, (1, 2), figures=("fig6",))
    # fig8/9's (P = p_large, smallest/largest size) sweeps are a subset
    # of fig6's panels at tiny scale, so dedup leaves the fig6 set.
    assert all_figs == fig6_only
    assert dedupe(all_figs + fig6_only) == all_figs
    with pytest.raises(ConfigError, match="unknown figures"):
        expand_figures(scale, (1,), figures=("fig42",))


# ----------------------------------------------------------------------
# RunRecord serialization round trip
# ----------------------------------------------------------------------
def test_run_record_dict_round_trip():
    record = execute_job(SPEC)
    clone = run_record_from_dict(json.loads(json.dumps(run_record_to_dict(record))))
    assert clone == record
    assert clone is not record


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
def test_cache_miss_put_hit(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(SPEC) is None
    record = execute_job(SPEC)
    path = cache.put(SPEC, record)
    assert path.exists() and SPEC in cache
    assert cache.get(SPEC) == record
    st = cache.stats()
    assert st.entries == len(cache) == 1 and st.bytes > 0


def test_cache_env_var_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
    assert ResultCache().root == tmp_path / "via-env"
    assert ResultCache(tmp_path / "explicit").root == tmp_path / "explicit"


def test_cache_schema_bump_invalidates(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, execute_job(SPEC))
    monkeypatch.setattr(jobs_mod, "SCHEMA_VERSION", jobs_mod.SCHEMA_VERSION + 1)
    assert ResultCache(tmp_path).get(SPEC) is None  # new version dir, no entry


def test_cache_recovers_from_corruption(tmp_path):
    cache = ResultCache(tmp_path)
    record = execute_job(SPEC)
    path = cache.put(SPEC, record)

    path.write_text("{ not json")
    assert cache.get(SPEC) is None
    assert not path.exists(), "corrupted entry should be discarded"

    # Well-formed JSON whose key doesn't match the spec is stale too.
    other = JobSpec(app="sort", n_pes=4, npp=8, h=1)
    cache.put(SPEC, record)
    payload = json.loads(cache.path_for(SPEC).read_text())
    bad = dict(payload, key=other.key())
    cache.path_for(SPEC).write_text(json.dumps(bad))
    assert cache.get(SPEC) is None

    # Structurally broken record payload.
    cache.put(SPEC, record)
    payload = json.loads(cache.path_for(SPEC).read_text())
    del payload["record"]["runtime_seconds"]
    cache.path_for(SPEC).write_text(json.dumps(payload))
    assert cache.get(SPEC) is None


def test_cache_purge(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, execute_job(SPEC))
    assert cache.purge() == 1
    assert not pathlib.Path(tmp_path).exists()
    assert cache.purge() == 0  # idempotent


# ----------------------------------------------------------------------
# Orchestration: memo -> disk -> execute
# ----------------------------------------------------------------------
def test_run_job_memo_then_disk(tmp_path):
    clear_memo()
    reset_stats()
    with using(cache_dir=str(tmp_path)):
        first = run_job(SPEC)
        assert run_job(SPEC) is first
        clear_memo()
        rehydrated = run_job(SPEC)
    assert rehydrated == first and rehydrated is not first
    st = stats()
    assert (st.executed, st.disk_hits, st.memo_hits) == (1, 1, 1)


def test_no_cache_option_writes_nothing(tmp_path):
    clear_memo()
    store = tmp_path / "store"
    with using(cache_dir=str(store), use_cache=False):
        run_job(SPEC)
    assert not store.exists()


def test_clear_cache_disk_purges(tmp_path):
    clear_memo()
    with using(cache_dir=str(tmp_path)):
        run_job(SPEC)
        assert pathlib.Path(tmp_path).exists()
        clear_cache(disk=True)
        assert not pathlib.Path(tmp_path).exists()
        # and the memo went too: next call re-executes
        reset_stats()
        run_job(SPEC)
    assert stats().executed == 1


def test_options_validation_and_reset():
    with pytest.raises(ConfigError):
        RunnerOptions(jobs=0).validate()
    with pytest.raises(ConfigError):
        RunnerOptions(timeout=-1).validate()
    with using(jobs=3):
        assert get_options().jobs == 3
    assert get_options().jobs == 1


# ----------------------------------------------------------------------
# Parallel-vs-serial determinism (the acceptance property)
# ----------------------------------------------------------------------
DETERMINISM_SPECS = expand_sweep("sort", 4, 8, (1, 2, 4)) + expand_sweep(
    "fft", 4, 8, (1, 2, 4)
)


def test_parallel_matches_serial(tmp_path):
    clear_memo()
    serial = run_specs(
        DETERMINISM_SPECS, options=RunnerOptions(jobs=1, cache_dir=str(tmp_path / "a"))
    )
    clear_memo()
    parallel = run_specs(
        DETERMINISM_SPECS, options=RunnerOptions(jobs=4, cache_dir=str(tmp_path / "b"))
    )
    assert serial == parallel
    assert list(serial) == list(parallel) == dedupe(DETERMINISM_SPECS)


def test_warm_cache_executes_nothing(tmp_path):
    clear_memo()
    opts = RunnerOptions(jobs=4, cache_dir=str(tmp_path))
    cold = run_specs(DETERMINISM_SPECS, options=opts)
    clear_memo()
    reset_stats()
    warm = run_specs(DETERMINISM_SPECS, options=opts)
    assert warm == cold
    st = stats()
    assert st.executed == 0 and st.disk_hits == len(cold)


def test_sweep_threads_shape(tmp_path):
    with using(cache_dir=str(tmp_path)):
        records = sweep_threads("sort", 4, 8, (1, 2, 16))
    assert sorted(records) == [1, 2]
    assert all(rec.h == h for h, rec in records.items())


# ----------------------------------------------------------------------
# Pool: progress, crash retry, timeout
# ----------------------------------------------------------------------
def test_pool_progress_counts(tmp_path):
    clear_memo()
    seen: list[tuple[int, int]] = []
    opts = RunnerOptions(
        jobs=2,
        cache_dir=str(tmp_path),
        progress=lambda st: seen.append((st.completed, st.cached)),
    )
    run_specs(DETERMINISM_SPECS[:3], options=opts)
    assert seen[-1][0] == 3  # every execution reported
    assert all(c <= 3 for c, _ in seen)


def test_pool_status_describe():
    st = PoolStatus(total=10, workers=4, cached=3, completed=2, retried=1)
    text = st.describe()
    assert "5/10" in text and "3 cached" in text and "retried" in text
    assert st.running == min(4, st.outstanding) == 4


def test_run_jobs_rejects_bad_jobs():
    with pytest.raises(SimulationError):
        run_jobs([SPEC], jobs=0)


def test_run_jobs_empty():
    assert run_jobs([], jobs=4) == {}


def _flagged_crash_worker(spec, timeout):
    """Crash the worker process hard iff the flag file is present.

    The flag is consumed *before* dying, so the retry pass succeeds —
    modelling a transient worker loss (OOM kill, stray signal).
    """
    flag = pathlib.Path(os.environ["REPRO_TEST_CRASH_FLAG"])
    if flag.exists():
        flag.unlink()
        os._exit(17)
    from repro.runner.worker import run_job_worker

    return run_job_worker(spec, timeout)


def _always_crash_worker(spec, timeout):
    os._exit(17)


def test_worker_crash_is_retried_once(tmp_path, monkeypatch):
    flag = tmp_path / "crash-once"
    flag.write_text("boom")
    monkeypatch.setenv("REPRO_TEST_CRASH_FLAG", str(flag))
    events: list[int] = []
    status = PoolStatus(total=2, workers=2)
    results = run_jobs(
        DETERMINISM_SPECS[:2],
        jobs=2,
        worker=_flagged_crash_worker,
        progress=lambda st: events.append(st.retried),
        status=status,
    )
    assert len(results) == 2
    assert all(rec.verified for rec in results.values())
    assert status.retried >= 1 and max(events) >= 1


def test_worker_crash_twice_raises():
    with pytest.raises(SimulationError, match="crashed twice"):
        run_jobs(DETERMINISM_SPECS[:2], jobs=2, worker=_always_crash_worker)


def _sleepy_worker(spec, timeout):
    from repro.runner.worker import deadline

    with deadline(timeout):
        time.sleep(10)
    return None  # pragma: no cover - the deadline fires first


def test_per_job_timeout_fires():
    from repro.runner.worker import JobTimeout

    with pytest.raises(JobTimeout):
        _sleepy_worker(SPEC, 1)


def test_deadline_noop_without_budget():
    from repro.runner.worker import deadline

    with deadline(None):
        pass  # must not arm an alarm
