"""Packet record tests: widths, slots, validation."""

import pytest

from repro.errors import PacketError
from repro.packet import Packet, PacketKind, Priority


def mk(**kw):
    defaults = dict(kind=PacketKind.READ_REQ, src=0, dst=1)
    defaults.update(kw)
    return Packet(**defaults)


def test_default_packet_is_two_words():
    assert mk().words == 2


def test_slots_standard_packet():
    # One 2-word packet occupies one port slot of N cycles.
    assert mk().slots(2) == 2
    assert mk().slots(3) == 3


def test_slots_wide_packet_scales():
    wide = mk(kind=PacketKind.BLOCK_READ_REPLY, words=8)
    assert wide.slots(2) == 8  # four 2-word packets at 2 cycles each


def test_slots_odd_word_count_rounds_up():
    odd = mk(kind=PacketKind.INVOKE, words=5)
    assert odd.slots(2) == 6  # ceil(5/2) = 3 packets


def test_negative_endpoints_rejected():
    with pytest.raises(PacketError):
        mk(src=-1)
    with pytest.raises(PacketError):
        mk(dst=-2)


def test_sub_two_word_packet_rejected():
    with pytest.raises(PacketError):
        mk(words=1)


def test_sequence_numbers_unique_and_increasing():
    a, b = mk(), mk()
    assert b.seq > a.seq


def test_priority_levels():
    assert Priority.HIGH < Priority.NORMAL  # high sorts first
    assert mk().priority is Priority.NORMAL


def test_all_kinds_constructible():
    for kind in PacketKind:
        assert mk(kind=kind).kind is kind
