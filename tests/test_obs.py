"""Observability subsystem: event bus, recorder, views, Perfetto export."""

import json
import pathlib

import pytest

from repro import EMX, MachineConfig
from repro.apps import run_bitonic, run_fft
from repro.errors import ConfigError
from repro.metrics.counters import SwitchKind
from repro.obs import (
    BarrierEvent,
    BurstSpan,
    Category,
    EventBus,
    MatchEvent,
    PacketDeliver,
    PacketSend,
    RingRecorder,
    ThreadLife,
    ThreadSwitch,
    burst_timeline,
    format_switch_table,
    latency_histogram,
    packet_spans,
    percentile_from_hist,
    queue_depth_profile,
    switch_table,
    to_perfetto,
    validate_perfetto,
    write_perfetto,
)
from repro.packet import PacketKind

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def recorded_run(app="sort", n_pes=2, n=16, h=2, **kwargs):
    bus = EventBus()
    rec = RingRecorder(bus)
    runner = run_bitonic if app == "sort" else run_fft
    result = runner(n_pes, n, h, seed=0, obs=bus, **kwargs)
    return result, rec


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------
def test_bus_dispatches_by_category():
    bus = EventBus()
    got = []
    bus.subscribe(got.append, categories=[Category.SWITCH])
    bus.emit(ThreadSwitch(1, 0, SwitchKind.REMOTE_READ))
    bus.emit(BurstSpan(0, 0, 5, "burst"))  # different category: ignored
    assert len(got) == 1
    assert got[0].kind is SwitchKind.REMOTE_READ


def test_bus_unsubscribe_and_wants():
    bus = EventBus()
    got = []
    bus.subscribe(got.append)
    assert bus.wants(Category.PACKET)
    bus.unsubscribe(got.append)
    assert not bus.wants(Category.PACKET)
    bus.emit(PacketSend(0, 1, PacketKind.WRITE, 0, 1))
    assert got == []


# ----------------------------------------------------------------------
# Ring recorder
# ----------------------------------------------------------------------
def test_recorder_evicts_oldest_and_counts_drops():
    rec = RingRecorder(capacity=8)
    for i in range(20):
        rec.record(ThreadSwitch(i, 0, SwitchKind.EXPLICIT))
    assert len(rec) == 8
    assert rec.dropped == 12
    assert [e.t for e in rec.events] == list(range(12, 20))


def test_recorder_category_filter_and_counts():
    bus = EventBus()
    rec = RingRecorder(bus, categories=[Category.SWITCH])
    bus.emit(ThreadSwitch(1, 0, SwitchKind.EXPLICIT))
    bus.emit(BurstSpan(0, 0, 5, "burst"))
    assert len(rec) == 1
    assert rec.counts() == {Category.SWITCH: 1}


def test_recorder_rejects_bad_capacity():
    with pytest.raises(ConfigError):
        RingRecorder(capacity=0)


# ----------------------------------------------------------------------
# Disabled path: tracing off must not perturb the simulation
# ----------------------------------------------------------------------
def test_disabled_obs_is_none_and_emits_nothing():
    m = EMX(MachineConfig(n_pes=2, memory_words=1 << 12))
    assert m.obs is None

    @m.thread
    def worker(ctx):
        yield ctx.compute(5)

    m.spawn(0, "worker")
    m.run()


def test_observed_run_matches_unobserved_run():
    plain = run_bitonic(2, 16, 2, seed=0)
    observed, rec = recorded_run()
    assert len(rec) > 0
    pr, orr = plain.report, observed.report
    assert pr.runtime_cycles == orr.runtime_cycles
    assert pr.events_fired == orr.events_fired
    assert pr.network.packets == orr.network.packets
    for a, b in zip(pr.counters, orr.counters):
        assert a.cycles == b.cycles
        assert a.switches == b.switches


# ----------------------------------------------------------------------
# Emit-site coverage
# ----------------------------------------------------------------------
def test_all_event_families_emitted_by_bitonic():
    _, rec = recorded_run()
    kinds = {type(e) for e in rec.events}
    assert {ThreadSwitch, BurstSpan, PacketSend, PacketDeliver,
            BarrierEvent, ThreadLife} <= kinds


def test_matching_events_emitted_by_fft():
    # FFT's pair-reads exercise the two-token matching store.
    _, rec = recorded_run(app="fft", n_pes=2, n=16, h=2)
    matches = [e for e in rec.events if type(e) is MatchEvent]
    assert matches
    assert any(e.matched for e in matches)
    assert any(not e.matched for e in matches)


def test_switch_table_matches_pe_counters():
    result, rec = recorded_run(n_pes=4, n=64, h=2)
    table = switch_table(rec.events)
    for pe, counters in enumerate(result.report.counters):
        for kind in SwitchKind:
            assert table.get(pe, {}).get(kind, 0) == counters.switches.get(kind, 0)
    text = format_switch_table(table)
    assert "all" in text
    assert "remote_read" in text


def test_packet_spans_match_network_stats():
    result, rec = recorded_run()
    spans = packet_spans(rec.events)
    net = result.report.network
    assert len(spans) == net.packets
    assert max(s.latency for s in spans) == net.max_latency
    hist = latency_histogram(spans)
    assert percentile_from_hist(hist, 0.50) == net.p50_latency
    assert percentile_from_hist(hist, 0.95) == net.p95_latency


def test_queue_depth_profile_peaks_match_stats():
    result, rec = recorded_run()
    steps, max_depth = queue_depth_profile(rec.events)
    assert max_depth == result.report.network.max_in_flight
    assert steps[-1][1] == 0  # fabric drains by the end


def test_burst_timeline_feeds_trace_events():
    _, rec = recorded_run()
    timeline = burst_timeline(rec.events)
    assert set(timeline) == {0, 1}
    for events in timeline.values():
        assert events
        for a, b in zip(events, events[1:]):
            assert a.end <= b.start


def test_burst_timeline_agrees_with_machine_trace():
    # The obs-derived timeline must reproduce the config.trace spans.
    cfg = MachineConfig(trace=True)
    plain = run_bitonic(2, 16, 2, seed=0, config=cfg)
    _, rec = recorded_run(config=cfg)
    derived = burst_timeline(rec.events)
    for pe, expected in plain.report.traces.items():
        got = derived[pe]
        assert [(e.start, e.end, e.kind) for e in got] == [
            (e.start, e.end, e.kind) for e in expected
        ]


# ----------------------------------------------------------------------
# Perfetto export
# ----------------------------------------------------------------------
def test_perfetto_export_matches_golden():
    _, rec = recorded_run()
    fresh = to_perfetto(rec.events, n_pes=2)
    golden = json.loads((GOLDEN_DIR / "sort_p2_n16_h2.perfetto.json").read_text())
    assert fresh == golden


def test_perfetto_export_validates(tmp_path):
    _, rec = recorded_run()
    path = write_perfetto(tmp_path / "run.perfetto.json", rec.events, n_pes=2)
    obj = json.loads(path.read_text())
    assert validate_perfetto(obj) == []
    # One process track per PE plus the synthetic network process.
    names = {e["args"]["name"] for e in obj["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"PE 0", "PE 1", "network"}


def test_perfetto_truncated_ring_still_pairs():
    bus = EventBus()
    rec = RingRecorder(bus, capacity=64)  # drops early sends
    run_bitonic(2, 16, 2, seed=0, obs=bus)
    assert rec.dropped > 0
    obj = to_perfetto(rec.events, n_pes=2)
    assert validate_perfetto(obj) == []


def test_perfetto_switch_instants_match_counters():
    result, rec = recorded_run()
    obj = to_perfetto(rec.events, n_pes=2)
    for kind in SwitchKind:
        instants = sum(
            1 for e in obj["traceEvents"]
            if e.get("cat") == "switch" and e["name"] == f"switch:{kind.value}"
        )
        total = sum(c.switches.get(kind, 0) for c in result.report.counters)
        assert instants == total


def test_validate_perfetto_flags_problems():
    assert validate_perfetto([]) != []
    assert validate_perfetto({"traceEvents": 3}) != []
    bad = {"traceEvents": [
        {"ph": "Z", "pid": 0, "ts": 0},
        {"ph": "X", "pid": 0, "ts": -1, "dur": -2},
        {"ph": "e", "pid": 0, "ts": 0, "id": 9},
        {"ph": "b", "pid": 0, "ts": 0, "id": 7},
    ]}
    problems = validate_perfetto(bad)
    assert any("unknown phase" in p for p in problems)
    assert any("bad ts" in p for p in problems)
    assert any("without begin" in p for p in problems)
    assert any("never ended" in p for p in problems)
