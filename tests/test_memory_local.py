"""LocalMemory bounds, sparse semantics, block transfers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryFault
from repro.memory import LocalMemory


def test_unwritten_words_read_zero():
    m = LocalMemory(16)
    assert m.read(0) == 0
    assert m.read(15) == 0


def test_write_then_read():
    m = LocalMemory(16)
    m.write(3, 42)
    assert m.read(3) == 42


def test_floats_are_words_too():
    m = LocalMemory(4)
    m.write(0, 3.25)
    assert m.read(0) == 3.25


def test_out_of_bounds_read():
    m = LocalMemory(8)
    with pytest.raises(MemoryFault):
        m.read(8)
    with pytest.raises(MemoryFault):
        m.read(-1)


def test_out_of_bounds_write():
    m = LocalMemory(8)
    with pytest.raises(MemoryFault):
        m.write(8, 1)


def test_block_roundtrip():
    m = LocalMemory(32)
    m.write_block(4, [1, 2, 3, 4])
    assert m.read_block(4, 4) == [1, 2, 3, 4]


def test_block_read_includes_unwritten_zeros():
    m = LocalMemory(8)
    m.write(1, 9)
    assert m.read_block(0, 3) == [0, 9, 0]


def test_block_overrun_rejected_and_atomic():
    m = LocalMemory(8)
    with pytest.raises(MemoryFault):
        m.write_block(6, [1, 2, 3])
    # Nothing was written: the bounds check precedes the stores.
    assert m.read_block(6, 2) == [0, 0]


def test_negative_block_length():
    m = LocalMemory(8)
    with pytest.raises(MemoryFault):
        m.read_block(0, -1)


def test_empty_block_ops():
    m = LocalMemory(8)
    assert m.read_block(0, 0) == []
    assert m.write_block(0, []) == 0


def test_access_counters():
    m = LocalMemory(8)
    m.write_block(0, [1, 2])
    m.read(0)
    m.read_block(0, 2)
    assert m.writes == 2
    assert m.reads == 3


def test_zero_size_rejected():
    with pytest.raises(MemoryFault):
        LocalMemory(0)


def test_touched_tracks_writes():
    m = LocalMemory(8)
    m.write(2, 1)
    m.write(5, 1)
    assert sorted(m.touched()) == [2, 5]


@given(st.data())
def test_block_write_equals_word_writes(data):
    size = data.draw(st.integers(min_value=1, max_value=64))
    values = data.draw(st.lists(st.integers(-1000, 1000), max_size=size))
    offset = data.draw(st.integers(min_value=0, max_value=size - len(values))) if len(values) <= size else 0
    a, b = LocalMemory(size), LocalMemory(size)
    a.write_block(offset, values)
    for i, v in enumerate(values):
        b.write(offset + i, v)
    assert a.read_block(0, size) == b.read_block(0, size)
