"""Network transport: latency, bandwidth, ordering, both models."""

import pytest

from repro.config import MachineConfig, TimingModel
from repro.errors import NetworkError
from repro.network import (
    AnalyticOmegaNetwork,
    CircularOmegaTopology,
    DetailedOmegaNetwork,
    build_network,
)
from repro.packet import Packet, PacketKind
from repro.sim import Engine


def rig(n_pes=8, cls=DetailedOmegaNetwork, timing=None):
    engine = Engine()
    net = cls(engine, CircularOmegaTopology(n_pes), timing or TimingModel())
    inbox = {pe: [] for pe in range(n_pes)}
    for pe in range(n_pes):
        net.attach(pe, lambda p, pe=pe: inbox[pe].append((engine.now, p)))
    return engine, net, inbox


def pkt(src, dst, **kw):
    return Packet(kind=PacketKind.WRITE, src=src, dst=dst, **kw)


def test_uncontended_latency_is_hops_plus_one():
    engine, net, inbox = rig()
    p = pkt(0, 3)
    hops = net.topology.hop_count(0, 3)
    engine.schedule(0, net.send, p)
    engine.run()
    arrival, _ = inbox[3][0]
    assert arrival == hops + 1 + (TimingModel().eject - 1)


def test_local_packet_is_just_ejection():
    engine, net, inbox = rig()
    engine.schedule(5, net.send, pkt(2, 2))
    engine.run()
    assert inbox[2][0][0] == 5 + TimingModel().eject


def test_injection_port_serialises_bursts():
    """Two packets from one source leave one port slot apart."""
    engine, net, inbox = rig()
    engine.schedule(0, net.send, pkt(0, 3))
    engine.schedule(0, net.send, pkt(0, 3))
    engine.run()
    t1, t2 = inbox[3][0][0], inbox[3][1][0]
    assert t2 - t1 == TimingModel().port_cycles_per_packet


def test_non_overtaking_same_pair():
    engine, net, inbox = rig()
    for i in range(10):
        engine.schedule(i, net.send, pkt(1, 6, data=i))
    engine.run()
    datas = [p.data for _, p in inbox[6]]
    assert datas == list(range(10))


def test_wide_packet_occupies_more_bandwidth():
    engine, net, inbox = rig()
    wide = Packet(kind=PacketKind.BLOCK_READ_REPLY, src=0, dst=3, words=8)
    engine.schedule(0, net.send, wide)
    engine.schedule(0, net.send, pkt(0, 3))
    engine.run()
    t_wide, t_after = inbox[3][0][0], inbox[3][1][0]
    assert t_after - t_wide == wide.slots(TimingModel().port_cycles_per_packet)


def test_detailed_models_stage_contention():
    """Cross traffic through a shared switch port delays one packet in
    the detailed model but not the analytic one."""

    def run(cls):
        engine, net, inbox = rig(cls=cls)
        # Find two sources whose routes to their destinations share a
        # switch output port.
        ports = {}
        shared = None
        for src in range(8):
            for dst in range(8):
                for hop in net.topology.route(src, dst):
                    key = (hop.node, hop.bit)
                    if key in ports and ports[key][0] != src:
                        shared = (ports[key], (src, dst))
                        break
                    ports[key] = (src, dst)
                if shared:
                    break
            if shared:
                break
        assert shared is not None
        (s1, d1), (s2, d2) = shared
        engine.schedule(0, net.send, pkt(s1, d1))
        engine.schedule(0, net.send, pkt(s2, d2))
        engine.run()
        return inbox[d2][0][0] if d1 != d2 else inbox[d2][1][0]

    base = TimingModel()
    t_detailed = run(DetailedOmegaNetwork)
    t_analytic = run(AnalyticOmegaNetwork)
    assert t_detailed >= t_analytic  # contention can only delay


def test_stats_accumulate():
    engine, net, _ = rig()
    for i in range(5):
        engine.schedule(i * 10, net.send, pkt(0, 3))
    engine.run()
    assert net.stats.packets == 5
    assert net.stats.words == 10
    assert net.stats.mean_latency > 0
    assert net.stats.count(PacketKind.WRITE) == 5
    assert "write=5" in net.stats.summary()


def test_unattached_destination_rejected():
    engine = Engine()
    net = DetailedOmegaNetwork(engine, CircularOmegaTopology(4), TimingModel())
    net.attach(0, lambda p: None)
    with pytest.raises(NetworkError):
        net.send(pkt(0, 2))


def test_double_attach_rejected():
    engine = Engine()
    net = DetailedOmegaNetwork(engine, CircularOmegaTopology(4), TimingModel())
    net.attach(0, lambda p: None)
    with pytest.raises(NetworkError):
        net.attach(0, lambda p: None)


def test_build_network_selects_model():
    engine = Engine()
    assert isinstance(
        build_network(engine, MachineConfig(n_pes=4, network_model="detailed")),
        DetailedOmegaNetwork,
    )
    assert isinstance(
        build_network(engine, MachineConfig(n_pes=4, network_model="analytic")),
        AnalyticOmegaNetwork,
    )


def test_in_flight_tracking():
    engine, net, _ = rig()
    engine.schedule(0, net.send, pkt(0, 5))
    engine.step()  # the send itself
    assert net.in_flight == 1
    engine.run()
    assert net.in_flight == 0


def test_port_utilization_tracks_busy_fraction():
    engine, net, _ = rig()
    for i in range(10):
        engine.schedule(i * 4, net.send, pkt(0, 3))
    engine.run()
    util = net.port_utilization()
    inj = util[("inj", 0)]
    assert 0 < inj <= 1.0
    # 10 packets x 2 cycles over the run span.
    assert inj == pytest.approx(20 / engine.now)
    assert util[("ej", 3)] == pytest.approx(20 / engine.now)


def test_hottest_ports_sorted():
    engine, net, _ = rig()
    engine.schedule(0, net.send, pkt(0, 3))
    engine.schedule(0, net.send, pkt(0, 3))
    engine.schedule(0, net.send, pkt(1, 2))
    engine.run()
    hottest = net.hottest_ports(top=3)
    assert len(hottest) == 3
    assert hottest[0][1] >= hottest[1][1] >= hottest[2][1]


def test_port_utilization_empty_network():
    engine, net, _ = rig()
    assert net.port_utilization() == {}
