"""ASCII chart rendering."""

import pytest

from repro.errors import SimulationError
from repro.metrics import plot_curves


CURVES = {"a": {1: 1.0, 2: 0.1, 16: 0.5}, "b": {1: 2.0, 4: 0.05, 16: 0.9}}


def test_plot_has_frame_and_legend():
    out = plot_curves(CURVES, title="T", ylabel="s")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].endswith("|")
    assert "o=a" in lines[-1] and "x=b" in lines[-1]
    assert "[s]" in lines[-1]


def test_plot_places_extremes():
    out = plot_curves({"a": {1: 1.0, 16: 100.0}}, height=8)
    rows = [l for l in out.splitlines() if l.endswith("|")]
    assert "o" in rows[0]        # max in the top row
    assert "o" in rows[-1]       # min in the bottom row


def test_plot_linear_scale_allows_nonpositive():
    out = plot_curves({"a": {1: -1.0, 2: 0.0, 3: 1.0}}, logy=False)
    assert "o" in out


def test_plot_log_rejects_nonpositive():
    with pytest.raises(SimulationError, match="positive"):
        plot_curves({"a": {1: 0.0, 2: 1.0}})


def test_plot_validation():
    with pytest.raises(SimulationError):
        plot_curves(CURVES, width=4)
    many = {str(i): {1: 1.0, 2: 2.0} for i in range(9)}
    with pytest.raises(SimulationError):
        plot_curves(many)
    assert plot_curves({}) == "(no data)"


def test_plot_flat_curve():
    out = plot_curves({"a": {1: 5.0, 2: 5.0}})
    assert "o" in out
