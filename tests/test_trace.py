"""Tracing subsystem: event capture and timeline rendering."""

import pytest

from repro import EMX, MachineConfig
from repro.errors import SimulationError
from repro.trace import TraceEvent, render_timeline, utilization


def traced_machine():
    m = EMX(MachineConfig(n_pes=2, memory_words=1 << 12, trace=True))

    @m.thread
    def worker(ctx, mate):
        yield ctx.compute(20)
        v = yield ctx.read(ctx.ga(mate, 0))
        yield ctx.compute(v)

    m.pes[0].memory.write(0, 10)
    m.pes[1].memory.write(0, 10)
    m.spawn(0, "worker", 1)
    m.spawn(1, "worker", 0)
    m.run()
    return m


def test_trace_disabled_by_default():
    m = EMX(MachineConfig(n_pes=2, memory_words=1 << 12))

    @m.thread
    def worker(ctx):
        yield ctx.compute(5)

    m.spawn(0, "worker")
    m.run()
    assert m.traces() == {0: [], 1: []}


def test_trace_records_bursts_and_idle():
    m = traced_machine()
    events = m.traces()[0]
    kinds = {e.kind for e in events}
    assert "burst" in kinds
    assert "idle" in kinds  # the read wait shows up
    for e in events:
        assert e.end >= e.start
    # Bursts carry the thread name.
    assert any(e.label.startswith("worker@") for e in events if e.kind == "burst")


def test_trace_spans_are_disjoint_and_ordered():
    for pe, events in traced_machine().traces().items():
        for a, b in zip(events, events[1:]):
            assert a.end <= b.start, (pe, a, b)


def test_em4_service_traced():
    m = EMX(MachineConfig(n_pes=2, memory_words=1 << 12, trace=True, em4_mode=True))

    @m.thread
    def reader(ctx):
        yield ctx.read(ctx.ga(1, 0))

    m.spawn(0, "reader")
    m.run()
    assert any(e.kind == "service" for e in m.traces()[1])


def test_event_validation():
    with pytest.raises(SimulationError):
        TraceEvent(5, 4, "burst")
    with pytest.raises(SimulationError):
        TraceEvent(0, 1, "nonsense")


def test_utilization():
    events = [
        TraceEvent(0, 10, "burst"),
        TraceEvent(10, 20, "idle"),
        TraceEvent(20, 30, "burst"),
    ]
    assert utilization(events) == pytest.approx(2 / 3)
    assert utilization([]) == 0.0
    assert utilization([TraceEvent(5, 5, "burst")]) == 0.0


def test_render_timeline_shape():
    m = traced_machine()
    out = render_timeline(m.traces(), width=40)
    lines = out.splitlines()
    assert lines[0].startswith("cycles 0..")
    assert lines[1].startswith("PE  0 |") and lines[1].endswith("|")
    assert lines[2].startswith("PE  1 |")
    assert "legend" in lines[-1]
    body = lines[1].split("|")[1]
    assert len(body) == 40
    assert "#" in body


def test_render_timeline_window():
    m = traced_machine()
    out = render_timeline(m.traces(), width=16, start=0, end=30)
    assert "cycles 0..30" in out


def test_render_timeline_errors():
    with pytest.raises(SimulationError):
        render_timeline({0: [TraceEvent(0, 5, "burst")]}, width=4)
    with pytest.raises(SimulationError):
        render_timeline({0: [TraceEvent(0, 5, "burst")]}, start=5, end=5)
    assert render_timeline({0: []}) == "(no trace events)"
