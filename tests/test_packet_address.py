"""Global-address encoding tests (incl. hypothesis round trip)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.packet import GlobalAddress, decode_address, encode_address
from repro.packet.address import OFFSET_BITS


def test_encode_decode_simple():
    word = encode_address(3, 42)
    assert decode_address(word) == GlobalAddress(3, 42)


def test_encoding_is_pe_major():
    assert encode_address(1, 0) > encode_address(0, (1 << OFFSET_BITS) - 1)


def test_pointer_arithmetic():
    ga = GlobalAddress(2, 10)
    assert ga + 5 == GlobalAddress(2, 15)
    assert (ga + 5).packed() == encode_address(2, 15)


def test_negative_pe_rejected():
    with pytest.raises(AddressError):
        encode_address(-1, 0)


def test_offset_out_of_field_rejected():
    with pytest.raises(AddressError):
        encode_address(0, 1 << OFFSET_BITS)
    with pytest.raises(AddressError):
        encode_address(0, -1)


def test_decode_negative_rejected():
    with pytest.raises(AddressError):
        decode_address(-5)


def test_repr_is_compact():
    assert repr(GlobalAddress(1, 2)) == "ga(pe=1, off=2)"


@given(
    st.integers(min_value=0, max_value=1 << 16),
    st.integers(min_value=0, max_value=(1 << OFFSET_BITS) - 1),
)
def test_roundtrip_property(pe, offset):
    assert decode_address(encode_address(pe, offset)) == (pe, offset)


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=1 << 20),
    st.integers(min_value=0, max_value=1 << 10),
)
def test_packed_addition_commutes(pe, offset, delta):
    """(ga + d).packed() == packed(pe, offset + d)."""
    assert (GlobalAddress(pe, offset) + delta).packed() == encode_address(pe, offset + delta)
