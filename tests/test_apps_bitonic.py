"""Simulated multithreaded bitonic sort: correctness and mechanics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineConfig, SwitchKind
from repro.apps import run_bitonic
from repro.errors import ProgramError


def test_sorts_small_machine():
    r = run_bitonic(n_pes=4, n=32, h=2)
    assert r.sorted_ok
    assert r.output == sorted(r.output)


def test_single_thread_baseline():
    r = run_bitonic(n_pes=4, n=32, h=1)
    assert r.sorted_ok
    assert r.report.switches(SwitchKind.THREAD_SYNC) == 0  # nothing to wait for


def test_sorts_with_many_threads():
    r = run_bitonic(n_pes=4, n=64, h=8)
    assert r.sorted_ok
    assert r.report.switches(SwitchKind.THREAD_SYNC) > 0


def test_non_dividing_thread_count():
    r = run_bitonic(n_pes=4, n=32, h=3)
    assert r.sorted_ok


def test_duplicate_values_sort():
    data = [5] * 16 + [1] * 8 + [9] * 8
    r = run_bitonic(n_pes=4, n=32, h=2, data=data)
    assert r.sorted_ok


def test_already_sorted_and_reversed_inputs():
    up = list(range(32))
    down = list(range(32))[::-1]
    assert run_bitonic(n_pes=4, n=32, h=2, data=up).sorted_ok
    assert run_bitonic(n_pes=4, n=32, h=2, data=down).sorted_ok


def test_negative_values():
    data = [(-1) ** i * i for i in range(32)]
    assert run_bitonic(n_pes=4, n=32, h=4, data=data).sorted_ok


def test_two_processors():
    assert run_bitonic(n_pes=2, n=16, h=2).sorted_ok


def test_remote_read_switch_count_is_derivable():
    """Reads per PE = schedule length x n/P unless early termination
    saves some; the switch count can never exceed the bound."""
    r = run_bitonic(n_pes=4, n=64, h=2)
    schedule_len = 3  # log2(4) * (log2(4)+1) / 2
    bound = schedule_len * 16
    per_pe = r.report.switches(SwitchKind.REMOTE_READ)
    assert 0 < per_pe <= bound
    assert r.reads_possible == schedule_len * 64


def test_iter_sync_switches_grow_with_threads():
    low = run_bitonic(n_pes=4, n=64, h=1).report.switches(SwitchKind.ITER_SYNC)
    high = run_bitonic(n_pes=4, n=64, h=8).report.switches(SwitchKind.ITER_SYNC)
    assert high > low


def test_validation_rejects_bad_shapes():
    with pytest.raises(ProgramError):
        run_bitonic(n_pes=3, n=30, h=1)  # P not a power of two
    with pytest.raises(ProgramError):
        run_bitonic(n_pes=4, n=30, h=1)  # n not divisible
    with pytest.raises(ProgramError):
        run_bitonic(n_pes=4, n=48, h=1)  # n/P not a power of two
    with pytest.raises(ProgramError):
        run_bitonic(n_pes=4, n=32, h=9)  # h > n/P
    with pytest.raises(ProgramError):
        run_bitonic(n_pes=4, n=32, h=1, data=[1, 2, 3])  # wrong length


def test_em4_mode_still_sorts_but_slower():
    fast = run_bitonic(n_pes=4, n=64, h=2)
    slow = run_bitonic(
        n_pes=4, n=64, h=2, config=MachineConfig(n_pes=4, em4_mode=True)
    )
    assert slow.sorted_ok
    assert slow.report.runtime_cycles > fast.report.runtime_cycles


def test_analytic_network_model_sorts():
    r = run_bitonic(
        n_pes=4, n=64, h=2, config=MachineConfig(n_pes=4, network_model="analytic")
    )
    assert r.sorted_ok


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from([(2, 8), (4, 8), (8, 4)]),
    st.sampled_from([1, 2, 4]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_always_sorted(shape, h, seed):
    """Any (P, n/P, h, data) combination produces a sorted permutation."""
    n_pes, npp = shape
    import numpy as np

    rng = np.random.default_rng(seed)
    data = [int(x) for x in rng.integers(-1000, 1000, size=n_pes * npp)]
    r = run_bitonic(n_pes=n_pes, n=n_pes * npp, h=h, data=data)
    assert r.sorted_ok
    assert sorted(data) == r.output
