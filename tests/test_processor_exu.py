"""Execution Unit: burst semantics, effect costs, bucket accounting."""

import pytest

from repro import EMX, Bucket, MachineConfig, SwitchKind
from repro.errors import ThreadProtocolError


def mk():
    return EMX(MachineConfig(n_pes=4, memory_words=1 << 12))


def test_compute_charges_computation_bucket():
    m = mk()

    @m.thread
    def worker(ctx):
        yield ctx.compute(100)

    m.spawn(0, "worker")
    report = m.run()
    assert report.counters[0].cycles[Bucket.COMPUTATION] == 100


def test_invocation_charges_matching_cost():
    m = mk()

    @m.thread
    def worker(ctx):
        yield ctx.compute(1)

    m.spawn(0, "worker")
    report = m.run()
    assert report.counters[0].cycles[Bucket.SWITCHING] == m.config.timing.match_invoke


def test_remote_read_roundtrip_time():
    """Single remote read: runtime = burst + RTT + resume burst."""
    m = mk()

    @m.thread
    def reader(ctx):
        v = yield ctx.read(ctx.ga(1, 0))
        assert v == 42

    m.pes[1].memory.write(0, 42)
    m.spawn(0, "reader")
    report = m.run()
    t = m.config.timing
    issue_burst = t.match_invoke + t.pkt_gen + t.reg_save
    rtt_min = 2 + t.ibu_dma_service + 2  # two 1+eject transits + DMA
    assert report.runtime_cycles >= issue_burst + rtt_min + t.match_invoke
    c = report.counters[0]
    assert c.reads_issued == 1
    assert c.switches[SwitchKind.REMOTE_READ] == 1
    assert c.cycles[Bucket.OVERHEAD] == t.pkt_gen
    assert c.cycles[Bucket.COMMUNICATION] > 0


def test_remote_write_does_not_suspend():
    """A thread doing N writes runs them all in one burst."""
    m = mk()

    @m.thread
    def writer(ctx):
        for i in range(10):
            yield ctx.write(ctx.ga(1, i), i)

    m.spawn(0, "writer")
    report = m.run()
    c = report.counters[0]
    assert c.writes_issued == 10
    assert c.switches[SwitchKind.REMOTE_READ] == 0
    # All ten packet generations in one burst, one invocation cost.
    assert c.cycles[Bucket.OVERHEAD] == 10 * m.config.timing.pkt_gen
    assert c.cycles[Bucket.SWITCHING] == m.config.timing.match_invoke
    assert [m.pes[1].memory.read(i) for i in range(10)] == list(range(10))


def test_write_block_effect():
    m = mk()

    @m.thread
    def writer(ctx):
        yield ctx.write_block(ctx.ga(2, 5), [1, 2, 3])

    m.spawn(0, "writer")
    m.run()
    assert m.pes[2].memory.read_block(5, 3) == [1, 2, 3]


def test_spawn_crosses_processors():
    m = mk()
    ran = []

    @m.thread
    def child(ctx, tag):
        ran.append((ctx.pe, tag))
        yield ctx.compute(1)

    @m.thread
    def parent(ctx):
        yield ctx.spawn(3, "child", "hello")
        yield ctx.compute(1)

    m.spawn(0, "parent")
    m.run()
    assert ran == [(3, "hello")]


def test_call_reply_roundtrip():
    m = mk()
    got = {}

    @m.thread
    def server(ctx, x, continuation):
        yield ctx.compute(5)
        yield ctx.reply(continuation, x * x)

    @m.thread
    def client(ctx):
        got["result"] = yield ctx.call(2, "server", 7)

    m.spawn(0, "client")
    m.run()
    assert got["result"] == 49


def test_read_pair_matches_both_operands():
    m = mk()
    got = {}

    @m.thread
    def pair_reader(ctx):
        got["pair"] = yield ctx.read_pair(ctx.ga(1, 0), ctx.ga(1, 1))

    m.pes[1].memory.write_block(0, [3.5, -2.0])
    m.spawn(0, "pair_reader")
    report = m.run()
    assert got["pair"] == (3.5, -2.0)
    c = report.counters[0]
    assert c.reads_issued == 2
    assert c.switches[SwitchKind.REMOTE_READ] == 1  # one suspension
    assert m.pes[0].matching.parks == 1
    assert m.pes[0].matching.matches == 1


def test_read_pair_from_two_processors():
    m = mk()
    got = {}

    @m.thread
    def pair_reader(ctx):
        got["pair"] = yield ctx.read_pair(ctx.ga(1, 0), ctx.ga(2, 0))

    m.pes[1].memory.write(0, 10)
    m.pes[2].memory.write(0, 20)
    m.spawn(0, "pair_reader")
    m.run()
    assert got["pair"] == (10, 20)


def test_explicit_switch_requeues_fifo():
    """SwitchNow sends the thread to the queue tail, behind other work."""
    m = mk()
    order = []

    @m.thread
    def yielder(ctx):
        order.append("y1")
        yield ctx.switch()
        order.append("y2")

    @m.thread
    def other(ctx):
        order.append("other")
        yield ctx.compute(1)

    m.spawn(0, "yielder")
    m.spawn(0, "other")
    report = m.run()
    assert order == ["y1", "other", "y2"]
    assert report.counters[0].switches[SwitchKind.EXPLICIT] == 1


def test_non_effect_yield_raises():
    m = mk()

    @m.thread
    def bad(ctx):
        yield 42

    m.spawn(0, "bad")
    with pytest.raises(ThreadProtocolError):
        m.run()


def test_bucket_accounting_is_exact():
    """Buckets cover each PE's busy window exactly (checked in run())."""
    m = mk()

    @m.thread
    def worker(ctx, mate):
        for i in range(5):
            yield ctx.compute(7)
            v = yield ctx.read(ctx.ga(mate, i))
            yield ctx.write(ctx.ga(mate, i + 8), v + 1)

    m.pes[1].memory.write_block(0, [1, 2, 3, 4, 5])
    m.pes[0].memory.write_block(0, [9, 9, 9, 9, 9])
    m.spawn(0, "worker", 1)
    m.spawn(1, "worker", 0)
    report = m.run()  # run() raises if accounting mismatches
    for c in report.counters[:2]:
        assert c.total_cycles == c.busy_span


def test_frames_released_when_threads_finish():
    m = mk()

    @m.thread
    def worker(ctx):
        yield ctx.compute(1)

    for _ in range(5):
        m.spawn(0, "worker")
    m.run()
    assert m.pes[0].frames.live_count == 0
    assert m.pes[0].frames.peak_live >= 1
