"""The legacy positional ``(n_pes, n, h)`` shim, end to end.

Complements the basic mapping tests in ``test_api.py``: the
DeprecationWarning must fire exactly once per *call site* (the default
warning filter's dedup, preserved by ``stacklevel=2``), and a legacy
call must produce a RunRecord serialization indistinguishable from the
keyword form — figures built from old call sites cannot drift.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import app_names, get_app
from repro.metrics.serialize import run_record_from_report, run_record_to_dict


def _record(app, report, n_pes, npp, h):
    return run_record_to_dict(
        run_record_from_report(app, n_pes, npp, h, report, True)
    )


def test_warns_exactly_once_per_call_site():
    fn = get_app("sort")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(3):
            fn(2, 16, 1, seed=0)  # one call site, hit three times
        fn(2, 16, 1, seed=0)  # a second, distinct call site
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 2
    # stacklevel=2 attributes the warning to the caller, not the shim.
    assert all(w.filename == __file__ for w in deprecations)


def test_positional_and_keyword_run_records_identical():
    fn = get_app("sort")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = fn(4, 64, 2, seed=0)
    modern = fn(n_pes=4, n=64, h=2, seed=0)
    assert _record("sort", legacy.report, 4, 16, 2) == _record(
        "sort", modern.report, 4, 16, 2
    )


def test_partial_positional_prefix_maps():
    """Fewer than three positionals map left-to-right onto (n_pes, n, h)."""
    fn = get_app("fft")
    with pytest.warns(DeprecationWarning, match="n_pes, n"):
        legacy = fn(4, 32, h=1, seed=0)
    modern = fn(n_pes=4, n=32, h=1, seed=0)
    assert legacy.report.runtime_cycles == modern.report.runtime_cycles


def test_shim_applies_to_every_registered_app():
    """Every registry entry is wrapped: positional calls warn uniformly
    (unknown-keyword failures would raise TypeError instead)."""
    for name in app_names():
        fn = get_app(name)
        assert hasattr(fn, "app_names"), f"{name} is not shim-wrapped"
        assert name in fn.app_names


def test_legacy_positional_works_under_compiled():
    """The shim composes with the cohort compiler path."""
    fn = get_app("emc-sort")
    from repro.config import MachineConfig

    with pytest.warns(DeprecationWarning, match="positional"):
        legacy = fn(4, 64, 2, config=MachineConfig(compiled=True), seed=0)
    modern = fn(n_pes=4, n=64, h=2, seed=0)
    assert legacy.report.cohort["occupancy"] == 1.0
    assert legacy.report.runtime_cycles == modern.report.runtime_cycles
