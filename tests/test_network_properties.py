"""Hypothesis properties of the interconnect.

The switch unit enforces message non-overtaking and conserves packets;
these must hold under arbitrary traffic, not just the unit tests'
hand-picked cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TimingModel
from repro.network import AnalyticOmegaNetwork, CircularOmegaTopology, DetailedOmegaNetwork
from repro.packet import Packet, PacketKind
from repro.sim import Engine

N_PES = 8


def _run_traffic(cls, schedule):
    """schedule: list of (time, src, dst, tag). Returns delivery log."""
    engine = Engine()
    net = cls(engine, CircularOmegaTopology(N_PES), TimingModel())
    log = []
    for pe in range(N_PES):
        net.attach(pe, lambda p, pe=pe: log.append((engine.now, pe, p.src, p.data)))
    for when, src, dst, tag in schedule:
        engine.schedule(
            when,
            net.send,
            Packet(kind=PacketKind.WRITE, src=src, dst=dst, data=tag),
        )
    engine.run()
    return net, log


_schedule = st.lists(
    st.tuples(
        st.integers(0, 200),  # injection time
        st.integers(0, N_PES - 1),  # src
        st.integers(0, N_PES - 1),  # dst
        st.integers(0, 10**6),  # tag
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(_schedule, st.sampled_from([DetailedOmegaNetwork, AnalyticOmegaNetwork]))
def test_all_packets_delivered_exactly_once(schedule, cls):
    net, log = _run_traffic(cls, schedule)
    assert len(log) == len(schedule)
    assert net.in_flight == 0
    assert net.stats.packets == len(schedule)
    assert sorted(tag for _, _, _, tag in log) == sorted(t for *_, t in schedule)


@settings(max_examples=60, deadline=None)
@given(_schedule)
def test_non_overtaking_per_flow(schedule):
    """For every (src, dst) pair, packets arrive in injection order,
    regardless of cross traffic sharing switch ports."""
    # Tag packets with their per-flow sequence number.
    flows: dict[tuple[int, int], int] = {}
    tagged = []
    for when, src, dst, _ in sorted(schedule):
        seq = flows.get((src, dst), 0)
        flows[(src, dst)] = seq + 1
        tagged.append((when, src, dst, seq))
    _, log = _run_traffic(DetailedOmegaNetwork, tagged)
    seen: dict[tuple[int, int], int] = {}
    for _now, dst, src, seq in log:
        prev = seen.get((src, dst), -1)
        assert seq == prev + 1, f"flow {src}->{dst} overtook: {seq} after {prev}"
        seen[(src, dst)] = seq


@settings(max_examples=40, deadline=None)
@given(_schedule)
def test_latency_never_beats_cut_through(schedule):
    """No packet arrives faster than k+1 cycles (+ the eject charge)."""
    engine = Engine()
    net = DetailedOmegaNetwork(engine, CircularOmegaTopology(N_PES), TimingModel())
    timing = TimingModel()
    violations = []

    def sink(pkt, pe):
        floor = net.topology.hop_count(pkt.src, pe) + timing.eject
        if engine.now - pkt.born < floor:
            violations.append(pkt)

    for pe in range(N_PES):
        net.attach(pe, lambda p, pe=pe: sink(p, pe))
    for when, src, dst, tag in schedule:
        engine.schedule(when, net.send, Packet(kind=PacketKind.WRITE, src=src, dst=dst, data=tag))
    engine.run()
    assert violations == []
