"""Experiment drivers at tiny scale: caching, panels, microbenchmarks."""

import pytest

from repro.experiments import (
    THREAD_SWEEP,
    default_scale,
    fig6_panel,
    fig6_series,
    fig7_panel,
    fig8_panel,
    fig9_panel,
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9,
    measure_overhead_null_loop,
    measure_remote_read_latency,
    run_app,
    sweep_threads,
)
from repro.errors import ConfigError
from repro.experiments.common import clear_cache


def test_default_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    assert default_scale().name == "tiny"
    monkeypatch.setenv("REPRO_SCALE", "nope")
    with pytest.raises(ConfigError):
        default_scale()


def test_run_app_is_cached():
    clear_cache()
    a = run_app("sort", 4, 8, 2)
    b = run_app("sort", 4, 8, 2)
    assert a is b  # memoised
    c = run_app("sort", 4, 8, 2, seed=1)
    assert c is not a


def test_run_record_fields():
    rec = run_app("fft", 4, 8, 2)
    assert rec.verified
    assert rec.comm_seconds >= rec.comm_idle_seconds >= 0
    assert abs(sum(rec.breakdown().values()) - 100.0) < 1e-6
    from repro import SwitchKind

    assert rec.switches(SwitchKind.REMOTE_READ) > 0


def test_sweep_skips_oversized_thread_counts():
    recs = sweep_threads("sort", 4, 8, threads=(1, 2, 16))
    assert set(recs) == {1, 2, 8} - {8} | {1, 2}  # h=16 > npp=8 skipped


def test_fig6_series_structure():
    series = fig6_series("sort", 4, (8,), threads=(1, 2, 4))
    assert set(series) == {8}
    assert set(series[8]) == {1, 2, 4}
    assert all(v >= 0 for v in series[8].values())


def test_fig6_panel_and_format(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    scale = default_scale()
    series = fig6_panel("a", scale, threads=(1, 2, 4))
    out = format_fig6("a", series, scale.p_small)
    assert "B-sorting" in out and "communication time" in out
    with pytest.raises(ConfigError):
        fig6_panel("z")


def test_fig7_efficiency_panel(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    scale = default_scale()
    eff = fig7_panel("c", scale, threads=(1, 2, 4))
    for curve in eff.values():
        assert curve[1] == 0.0
    out = format_fig7("c", eff, scale.p_small)
    assert "efficiency" in out


def test_fig8_panel_percentages(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    scale = default_scale()
    panel = fig8_panel("a", scale, threads=(1, 2))
    for comps in panel.values():
        assert abs(sum(comps.values()) - 100.0) < 1e-6
    out = format_fig8("a", panel, scale.p_large, scale.small_size)
    assert "execution time distribution" in out
    with pytest.raises(ConfigError):
        fig8_panel("q")


def test_fig9_panel_switches(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    scale = default_scale()
    panel = fig9_panel("a", scale, threads=(1, 4))
    assert panel[1]["remote_read"] > 0
    assert panel[4]["iter_sync"] > panel[1]["iter_sync"] * 0.5
    out = format_fig9("a", panel, scale.p_large, scale.small_size)
    assert "switches per processor" in out
    with pytest.raises(ConfigError):
        fig9_panel("x")


def test_thread_sweep_constant():
    assert THREAD_SWEEP[0] == 1 and THREAD_SWEEP[-1] == 16


def test_remote_read_latency_near_one_microsecond():
    """µ1: the paper quotes ~1 µs (20-40 cycles) per remote read."""
    points = measure_remote_read_latency(n_pes=64, reads=64)
    for p in points:
        assert 8 <= p.roundtrip_cycles <= 40, p
        assert 0.4 <= p.microseconds <= 2.0, p
    assert {p.target for p in points} >= {1, 32, 63}


def test_null_loop_overhead_is_packet_generation():
    """µ2: a null loop's overhead is exactly the pkt-gen instructions."""
    res = measure_overhead_null_loop(n_pes=4, writes=128)
    assert res.cycles_per_packet == pytest.approx(1.0)
    assert res.overhead_cycles == 128


def test_run_app_rejects_unknown_app():
    from repro.errors import ProgramError

    with pytest.raises(ProgramError, match="unknown app"):
        run_app("quicksort", 4, 8, 1)


def test_scale_size_roles():
    scale = default_scale()
    assert scale.small_size == scale.sizes_per_pe[0]
    assert scale.large_size == scale.sizes_per_pe[-1]
    assert scale.sizes_for(scale.p_small) == scale.sizes_per_pe
