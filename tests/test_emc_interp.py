"""EM-C execution semantics and cycle accounting on the machine."""

import pytest

from repro import EMX, Bucket, MachineConfig, SwitchKind
from repro.emc import EmcCosts, compile_program, load_emc
from repro.errors import EmcRuntimeError, EmcSyntaxError


def run_source(src, spawns, n_pes=4, env=None, init=None):
    """Compile, spawn, run; returns the machine."""
    m = EMX(MachineConfig(n_pes=n_pes, memory_words=1 << 12))
    env = dict(env or {})
    if "bar" not in env:
        env["bar"] = None  # harmless placeholder for programs not using it
    load_emc(m, src, env=env)
    if init:
        init(m)
    for pe, name, args in spawns:
        m.spawn(pe, name, *args)
    m.run()
    return m


def mem(m, pe, off):
    return m.pes[pe].memory.read(off)


# ----------------------------------------------------------------------
# Arithmetic and control flow
# ----------------------------------------------------------------------
def test_arithmetic_semantics():
    src = """
    thread f() {
        mem[0] = 7 + 3 * 2;
        mem[1] = (7 - 10);
        mem[2] = 7 / 2;
        mem[3] = -7 / 2;
        mem[4] = 7 % 3;
        mem[5] = 2.5 * 4;
    }
    """
    m = run_source(src, [(0, "f", ())])
    assert mem(m, 0, 0) == 13
    assert mem(m, 0, 1) == -3
    assert mem(m, 0, 2) == 3  # C truncating division
    assert mem(m, 0, 3) == -3  # trunc toward zero, not floor
    assert mem(m, 0, 4) == 1
    assert mem(m, 0, 5) == 10.0


def test_comparisons_and_logic():
    src = """
    thread f() {
        mem[0] = 1 < 2;
        mem[1] = 2 <= 1;
        mem[2] = 1 == 1 && 2 != 3;
        mem[3] = 0 || 0;
        mem[4] = !0;
        mem[5] = !5;
    }
    """
    m = run_source(src, [(0, "f", ())])
    assert [mem(m, 0, i) for i in range(6)] == [1, 0, 1, 0, 1, 0]


def test_short_circuit_avoids_side_effects():
    """The right operand of && must not run when the left is false —
    here it would divide by zero."""
    src = "thread f() { mem[0] = 0 && (1 / 0); mem[1] = 1 || (1 / 0); }"
    m = run_source(src, [(0, "f", ())])
    assert mem(m, 0, 0) == 0
    assert mem(m, 0, 1) == 1


def test_while_and_break_continue():
    src = """
    thread f() {
        var i = 0;
        var total = 0;
        while (1) {
            i = i + 1;
            if (i % 2 == 0) { continue; }
            if (i > 9) { break; }
            total = total + i;
        }
        mem[0] = total;
    }
    """
    m = run_source(src, [(0, "f", ())])
    assert mem(m, 0, 0) == 1 + 3 + 5 + 7 + 9


def test_for_loop_and_nested_scopes():
    src = """
    thread f(n) {
        var total = 0;
        for (var i = 0; i < n; i = i + 1) {
            for (var j = 0; j <= i; j = j + 1) {
                total = total + 1;
            }
        }
        mem[0] = total;
    }
    """
    m = run_source(src, [(0, "f", (4,))])
    assert mem(m, 0, 0) == 1 + 2 + 3 + 4


def test_return_exits_thread():
    src = "thread f() { mem[0] = 1; return; mem[0] = 2; }"
    m = run_source(src, [(0, "f", ())])
    assert mem(m, 0, 0) == 1


# ----------------------------------------------------------------------
# Builtins
# ----------------------------------------------------------------------
def test_rread_rwrite_cross_pe():
    src = """
    thread f(mate) {
        var v = rread(mate, 0);
        rwrite(mate, 1, v * 10);
    }
    """
    m = run_source(src, [(0, "f", (1,))], init=lambda m: m.pes[1].memory.write(0, 7))
    assert mem(m, 1, 1) == 70


def test_rread2_matched_pair():
    src = """
    thread f(mate) {
        var pair = rread2(mate, 0, 1);
        mem[0] = at(pair, 0) + at(pair, 1);
    }
    """
    m = run_source(
        src, [(0, "f", (1,))], init=lambda m: m.pes[1].memory.write_block(0, [3, 4])
    )
    assert mem(m, 0, 0) == 7


def test_rblock():
    src = """
    thread f(mate, n) {
        var blk = rblock(mate, 0, n);
        var total = 0;
        for (var i = 0; i < len(blk); i = i + 1) { total = total + at(blk, i); }
        mem[0] = total;
    }
    """
    m = run_source(
        src, [(0, "f", (2, 4))], init=lambda m: m.pes[2].memory.write_block(0, [1, 2, 3, 4])
    )
    assert mem(m, 0, 0) == 10


def test_spawn_chain():
    src = """
    thread parent(child_pe) {
        spawn(child_pe, "child", pe());
    }
    thread child(from_pe) {
        mem[0] = 100 + from_pe;
    }
    """
    m = run_source(src, [(1, "parent", (3,))])
    assert mem(m, 3, 0) == 101


def test_pe_and_npes_intrinsics():
    src = "thread f() { mem[0] = pe(); mem[1] = npes(); }"
    m = run_source(src, [(2, "f", ())])
    assert mem(m, 2, 0) == 2
    assert mem(m, 2, 1) == 4


def test_barrier_and_tokens_from_env():
    from repro.core import OrderToken

    src = """
    thread w(t) {
        token_wait(tok, t);
        mem[10 + t] = mem[9 + t] + 1;
        token_advance(tok);
        barrier_wait(bar);
    }
    """
    m = EMX(MachineConfig(n_pes=2, memory_words=1 << 12))
    bar = m.make_barrier([3, 0])
    tok = OrderToken()
    load_emc(m, src, env={"bar": bar, "tok": tok})
    m.pes[0].memory.write(9, 5)
    for t in (2, 0, 1):  # spawn out of order; token serialises them
        m.spawn(0, "w", t)
    m.run()
    assert [mem(m, 0, 10 + i) for i in range(3)] == [6, 7, 8]


def test_switch_now_and_print():
    src = """
    thread f() {
        print("before");
        switch_now();
        print("after", 1 + 1);
    }
    """
    m = run_source(src, [(0, "f", ())])
    assert m.pes[0].guest_state["emc_output"] == ["before", "after 2"]


# ----------------------------------------------------------------------
# Cycle accounting
# ----------------------------------------------------------------------
def test_compute_builtin_charges_exact_cycles():
    src = "thread f() { compute(123); }"
    m = run_source(src, [(0, "f", ())])
    comp = m.pes[0].counters.cycles[Bucket.COMPUTATION]
    assert comp == 123 + EmcCosts().call_overhead


def test_loop_costs_scale_with_iterations():
    src = "thread f(n) { for (var i = 0; i < n; i = i + 1) { compute(1); } }"
    m10 = run_source(src, [(0, "f", (10,))])
    m20 = run_source(src, [(0, "f", (20,))])
    c10 = m10.pes[0].counters.cycles[Bucket.COMPUTATION]
    c20 = m20.pes[0].counters.cycles[Bucket.COMPUTATION]
    per_iter = (c20 - c10) / 10
    assert per_iter == pytest.approx((c10 - (c20 - c10) * 0) / 10, rel=0.5)
    # Each iteration: cmp(1)+branch(1)+call_overhead(1)+compute(1)+
    # assign(1)+add(1)+loop_back(1) = 7 cycles.
    assert per_iter == 7


def test_sorting_loop_body_near_papers_12_clocks():
    """The paper's read loop (buffer[k] = mem_read(addr++)) compiled
    from EM-C lands in the same run-length regime as the quoted 12."""
    src = """
    thread f(mate, n) {
        for (var k = 0; k < n; k = k + 1) {
            mem[64 + k] = rread(mate, k);
        }
    }
    """
    m = run_source(src, [(0, "f", (1, 8))])
    comp = m.pes[0].counters.cycles[Bucket.COMPUTATION]
    per_iter = comp / 8
    assert 6 <= per_iter <= 14


def test_reads_suspend_like_native_threads():
    src = "thread f(mate) { var a = rread(mate, 0); var b = rread(mate, 1); mem[0] = a + b; }"
    m = run_source(src, [(0, "f", (1,))],
                   init=lambda m: m.pes[1].memory.write_block(0, [1, 2]))
    assert m.pes[0].counters.switches[SwitchKind.REMOTE_READ] == 2
    assert mem(m, 0, 0) == 3


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
def test_undefined_variable():
    with pytest.raises(EmcRuntimeError, match="undefined variable"):
        run_source("thread f() { mem[0] = ghost; }", [(0, "f", ())])


def test_assign_to_undeclared():
    with pytest.raises(EmcRuntimeError, match="undeclared"):
        run_source("thread f() { x = 1; }", [(0, "f", ())])


def test_division_by_zero():
    with pytest.raises(EmcRuntimeError, match="division by zero"):
        run_source("thread f() { mem[0] = 1 / 0; }", [(0, "f", ())])


def test_unknown_builtin():
    with pytest.raises(EmcRuntimeError, match="unknown builtin"):
        run_source("thread f() { frobnicate(); }", [(0, "f", ())])


def test_wrong_arity_builtin():
    with pytest.raises(EmcRuntimeError, match="takes 2 arguments"):
        run_source("thread f() { rread(1); }", [(0, "f", ())])


def test_spawn_unknown_thread():
    with pytest.raises(EmcRuntimeError, match="unknown thread"):
        run_source('thread f() { spawn(0, "nope"); }', [(0, "f", ())])


def test_wrong_thread_arity():
    with pytest.raises(EmcRuntimeError, match="takes 1 arguments"):
        run_source("thread f(a) { return; }", [(0, "f", ())])


def test_bad_memory_index():
    with pytest.raises(EmcRuntimeError, match="index"):
        run_source("thread f() { mem[1.5] = 0; }", [(0, "f", ())])


def test_env_collision_rejected():
    with pytest.raises(EmcSyntaxError, match="collides"):
        compile_program("thread f() { return; }", env={"f": 1})
