"""Configuration surface and the error hierarchy."""

import pytest

from repro import CLOCK_HZ, CYCLE_SECONDS, MachineConfig, TimingModel
from repro import errors as E


def test_clock_constants():
    assert CLOCK_HZ == 20_000_000
    assert CYCLE_SECONDS == pytest.approx(50e-9)


def test_default_machine_config_is_valid():
    MachineConfig().validate()


def test_with_returns_validated_copy():
    base = MachineConfig()
    derived = base.with_(n_pes=64, em4_mode=True)
    assert derived.n_pes == 64 and derived.em4_mode
    assert base.n_pes == 16 and not base.em4_mode  # original untouched
    with pytest.raises(E.ConfigError):
        base.with_(n_pes=-1)


def test_trace_flag_round_trips():
    assert MachineConfig(trace=True).with_(n_pes=2).trace


def test_timing_switch_cost_derivation():
    tm = TimingModel()
    assert tm.switch_cost == tm.reg_save + tm.match_invoke


def test_timing_every_field_must_be_positive():
    tm = TimingModel()
    for field in tm.__dict__:
        with pytest.raises(E.ConfigError):
            tm.scaled(**{field: 0}).validate()


def test_calibrated_barrier_values():
    """The calibration DESIGN.md documents (recheck=48, check=8)."""
    tm = TimingModel()
    assert tm.barrier_recheck_interval == 48
    assert tm.barrier_check == 8


def test_error_hierarchy_roots_at_repro_error():
    leaves = [
        E.ConfigError,
        E.SimulationError,
        E.DeadlockError,
        E.AddressError,
        E.MemoryFault,
        E.SegmentError,
        E.NetworkError,
        E.RoutingError,
        E.PacketError,
        E.SchedulerError,
        E.ThreadProtocolError,
        E.BarrierError,
        E.ProgramError,
    ]
    for cls in leaves:
        assert issubclass(cls, E.ReproError)
    assert issubclass(E.DeadlockError, E.SimulationError)
    assert issubclass(E.SegmentError, E.MemoryFault)
    assert issubclass(E.RoutingError, E.NetworkError)


def test_single_except_catches_everything():
    with pytest.raises(E.ReproError):
        MachineConfig(n_pes=0).validate()
    with pytest.raises(E.ReproError):
        raise E.RoutingError("x")
