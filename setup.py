"""Legacy setup shim: keeps editable installs working on environments
whose setuptools predates PEP 660 (offline CI boxes without `wheel`)."""

from setuptools import setup

setup()
