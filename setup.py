"""Legacy setup shim: keeps editable installs working on environments
whose setuptools predates PEP 660 (offline CI boxes without `wheel`)."""

from setuptools import setup

# Mirrors [project].dependencies in pyproject.toml for setuptools too
# old to read PEP 621 metadata.  numpy is an optimisation, not a hard
# import: repro.compile.live degrades to scalar operand tables without
# it (see HAVE_NUMPY).
setup(install_requires=["numpy>=1.24"])
