"""A5: per-element split-phase reads vs. EMC-Y block-read transfers.

The EMC-Y implements "four types of send instructions … including remote
read request for one data and for a block of data".  The paper's sorting
loop reads element by element (that loop *is* the 12-cycle run length
the whole analysis builds on); this ablation shows what the block-read
instruction would change: one suspension per chunk, far fewer switches,
wide reply packets occupying port bandwidth instead.
"""

from __future__ import annotations

import pytest

from repro import SwitchKind
from repro.apps import run_bitonic
from repro.metrics.report import format_table

from conftest import publish

P, NPP = 16, 64
THREADS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def rows():
    out = []
    for h in THREADS:
        element = run_bitonic(n_pes=P, n=P * NPP, h=h, seed=11)
        block = run_bitonic(n_pes=P, n=P * NPP, h=h, seed=11, block_reads=True)
        assert element.sorted_ok and block.sorted_ok
        out.append(
            [
                h,
                round(element.report.runtime_seconds * 1e6, 1),
                round(block.report.runtime_seconds * 1e6, 1),
                round(element.report.switches(SwitchKind.REMOTE_READ)),
                round(block.report.switches(SwitchKind.REMOTE_READ)),
                round(element.report.runtime_seconds / block.report.runtime_seconds, 2),
            ]
        )
    return out


def test_block_read_ablation(benchmark, rows, outdir):
    publish(
        outdir,
        "ablation_block_reads",
        format_table(
            ["threads", "element [us]", "block [us]", "el switches", "blk switches", "speedup"],
            rows,
            title="A5: per-element vs block remote reads (bitonic sorting)",
        ),
    )
    for row in rows:
        assert row[4] < row[3] / 4  # switches collapse
        assert row[5] > 1.0  # block transfers win outright

    benchmark.pedantic(
        lambda: run_bitonic(n_pes=P, n=P * NPP, h=4, seed=12, block_reads=True),
        rounds=1,
        iterations=1,
    )
