"""µ1: remote-read latency — "a typical remote read takes ≈ 1 µs".

Reproduction target: sequential split-phase reads against targets at
varied hop distances round-trip in 20–40 EMC-Y cycles, i.e. on the
order of a microsecond at 20 MHz.
"""

from __future__ import annotations

import pytest

from repro.experiments import measure_remote_read_latency
from repro.metrics.report import format_table

from conftest import publish


@pytest.fixture(scope="module")
def latency_points():
    return measure_remote_read_latency(n_pes=64, reads=256)


def test_remote_read_latency(benchmark, latency_points, outdir):
    rows = [
        [p.target, p.hops, round(p.roundtrip_cycles, 1), round(p.microseconds, 3)]
        for p in latency_points
    ]
    publish(
        outdir,
        "micro_latency",
        format_table(
            ["target PE", "hops", "roundtrip [cyc]", "latency [us]"],
            rows,
            title="u1: remote read latency on the 64-PE machine (paper: ~1 us)",
        ),
    )
    for p in latency_points:
        assert 8 <= p.roundtrip_cycles <= 40
        assert 0.3 <= p.microseconds <= 2.0

    benchmark.pedantic(
        lambda: measure_remote_read_latency(n_pes=64, reads=256, targets=(32,)),
        rounds=1,
        iterations=1,
    )
