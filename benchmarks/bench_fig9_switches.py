"""Figure 9: average number of context switches per processor, by type.

Reproduction target: remote-read switches are flat in h and derivable
from (n, h, P); iteration-sync switches grow with h and rival
remote-read switching at 16 threads on the small problem; thread-sync
switches exist for sorting but (nearly) vanish for FFT, with a wide gap
below iteration-sync for FFT.
"""

from __future__ import annotations

import pytest

from repro.apps import run_bitonic, run_fft
from repro.experiments import check_fig9_orderings, fig9_panel, format_fig9
from repro.experiments.fig8 import PANELS

from conftest import BENCH_THREADS, publish


@pytest.fixture(scope="module")
def panels(scale):
    return {p: fig9_panel(p, scale, BENCH_THREADS) for p in sorted(PANELS)}


@pytest.mark.parametrize("panel", sorted(PANELS))
def test_fig9_panel(benchmark, panel, panels, scale, outdir):
    app, size_role = PANELS[panel]
    small = size_role == "small"
    npp = scale.small_size if small else scale.large_size
    series = panels[panel]
    publish(outdir, f"fig9{panel}", format_fig9(panel, series, scale.p_large, npp))

    problems = check_fig9_orderings(series, app, small_problem=small)
    assert problems == [], problems

    runner = run_bitonic if app == "sort" else run_fft
    benchmark.pedantic(
        lambda: runner(n_pes=scale.p_large, n=scale.p_large * npp, h=16),
        rounds=1,
        iterations=1,
    )
