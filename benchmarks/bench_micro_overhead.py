"""µ2: packet-generation overhead via the paper's null-loop probe.

Reproduction target: a loop body with no computation — only
packet-generating instructions — charges exactly the packet-generation
cost (one clock per packet on the EMC-Y), and that overhead is what the
Fig. 8 OVERHEAD band measures.
"""

from __future__ import annotations

import pytest

from repro.experiments import measure_overhead_null_loop
from repro.metrics.report import format_table

from conftest import publish


@pytest.fixture(scope="module")
def overhead():
    return measure_overhead_null_loop(n_pes=16, writes=2048)


def test_null_loop_overhead(benchmark, overhead, outdir):
    publish(
        outdir,
        "micro_overhead",
        format_table(
            ["writes", "overhead [cyc]", "cycles/packet"],
            [[overhead.writes, overhead.overhead_cycles, overhead.cycles_per_packet]],
            title="u2: null-loop packet generation overhead (EMC-Y: 1 clock)",
        ),
    )
    assert overhead.cycles_per_packet == pytest.approx(1.0)

    benchmark.pedantic(
        lambda: measure_overhead_null_loop(n_pes=16, writes=2048),
        rounds=1,
        iterations=1,
    )
