"""A7: the closed-form fabric load model vs. the detailed simulator.

Sweeps offered load on the 64-PE circular Omega and compares the M/D/1
hotspot model's predicted one-way latency against measured means — the
quantitative backing for the paper's "1 to 2 µs when the network is
normally loaded" and for EXPERIMENTS.md's fabric-boundedness analysis.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import OmegaLoadModel
from repro.config import TimingModel
from repro.metrics.report import format_table
from repro.network import CircularOmegaTopology, DetailedOmegaNetwork
from repro.packet import Packet, PacketKind
from repro.sim import Engine

from conftest import publish

N_PES = 64
SPACINGS = (128, 48, 24, 12)


def _simulate(spacing: int, packets_per_pe: int = 30) -> tuple[float, float]:
    """Returns (measured mean latency, measured hottest-port util)."""
    rng = random.Random(13)
    engine = Engine()
    net = DetailedOmegaNetwork(engine, CircularOmegaTopology(N_PES), TimingModel())
    for pe in range(N_PES):
        net.attach(pe, lambda p: None)
    # Poisson-like arrivals: uniformly random injection times at the
    # target mean rate (the M/D/1 model's assumption; lock-step waves
    # would measure transient burst congestion instead).
    horizon = packets_per_pe * spacing
    for src in range(N_PES):
        for _ in range(packets_per_pe):
            engine.schedule(
                rng.randrange(horizon),
                net.send,
                Packet(kind=PacketKind.WRITE, src=src, dst=rng.randrange(N_PES), data=0),
            )
    engine.run()
    hottest = net.hottest_ports(top=1)
    return net.stats.mean_latency, hottest[0][1] if hottest else 0.0


@pytest.fixture(scope="module")
def rows():
    model = OmegaLoadModel(n_pes=N_PES, eject_cycles=TimingModel().eject)
    out = []
    for spacing in SPACINGS:
        rate = 1.0 / spacing
        measured, hot_util = _simulate(spacing)
        predicted = model.one_way_latency(min(rate, model.saturation_load() * 0.95))
        out.append(
            [
                f"1/{spacing}",
                round(measured, 1),
                round(predicted, 1),
                round(measured / predicted, 2),
                round(hot_util, 3),
            ]
        )
    return out


def test_load_model_tracks_simulator(benchmark, rows, outdir):
    publish(
        outdir,
        "ablation_queueing",
        format_table(
            ["load [pkt/cyc/PE]", "simulated [cyc]", "model [cyc]", "ratio", "hot port util"],
            rows,
            title="A7: M/D/1 hotspot model vs detailed Omega (one-way latency)",
        ),
    )
    ratios = [r[3] for r in rows]
    assert all(0.8 < r < 1.25 for r in ratios), ratios
    sims = [r[1] for r in rows]
    assert sims == sorted(sims), "latency should grow with offered load"

    benchmark.pedantic(lambda: _simulate(24), rounds=1, iterations=1)
