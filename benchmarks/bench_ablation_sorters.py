"""A6: Batcher's bitonic sort vs the odd-even transposition baseline.

The paper selects bitonic sorting for its communication structure; this
ablation quantifies what that choice buys over the simplest distributed
sorter at the same thread structure: log P (log P + 1)/2 hypercube merge
iterations versus P neighbour rounds.
"""

from __future__ import annotations

import pytest

from repro.apps import run_bitonic, run_transpose_sort
from repro.metrics.report import format_table

from conftest import publish

NPP = 64
H = 4
PES = (4, 8, 16)


@pytest.fixture(scope="module")
def rows():
    out = []
    for P in PES:
        biton = run_bitonic(n_pes=P, n=P * NPP, h=H, seed=21)
        trans = run_transpose_sort(n_pes=P, n=P * NPP, h=H, seed=21)
        assert biton.sorted_ok and trans.sorted_ok
        out.append(
            [
                P,
                round(biton.report.runtime_seconds * 1e6, 1),
                round(trans.report.runtime_seconds * 1e6, 1),
                round(trans.report.runtime_seconds / biton.report.runtime_seconds, 2),
                (P.bit_length() - 1) * P.bit_length() // 2,
                P,
            ]
        )
    return out


def test_sorter_ablation(benchmark, rows, outdir):
    publish(
        outdir,
        "ablation_sorters",
        format_table(
            ["P", "bitonic [us]", "transposition [us]", "slowdown", "bitonic iters", "transp iters"],
            rows,
            title=f"A6: bitonic vs odd-even transposition (n/P={NPP}, h={H})",
        ),
    )
    # Bitonic must win, and the gap must widen with P (log^2 vs linear).
    slowdowns = [row[3] for row in rows]
    assert all(s > 1.0 for s in slowdowns)
    assert slowdowns[-1] > slowdowns[0]

    benchmark.pedantic(
        lambda: run_transpose_sort(n_pes=8, n=8 * NPP, h=H, seed=22),
        rounds=1,
        iterations=1,
    )
