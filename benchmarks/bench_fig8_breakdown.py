"""Figure 8: distribution of execution time on the 64-PE machine.

Reproduction target: the four components stack to 100 %; the one-thread
run shows relatively more communication (no overlapping possible);
switching grows with the thread count; FFT is computation-dominated
while sorting is not.
"""

from __future__ import annotations

import pytest

from repro.apps import run_bitonic, run_fft
from repro.experiments import check_fig8_components, fig8_panel, format_fig8
from repro.experiments.fig8 import PANELS

from conftest import BENCH_THREADS, publish


@pytest.fixture(scope="module")
def panels(scale):
    return {p: fig8_panel(p, scale, BENCH_THREADS) for p in sorted(PANELS)}


@pytest.mark.parametrize("panel", sorted(PANELS))
def test_fig8_panel(benchmark, panel, panels, scale, outdir):
    app, size_role = PANELS[panel]
    npp = scale.small_size if size_role == "small" else scale.large_size
    series = panels[panel]
    publish(outdir, f"fig8{panel}", format_fig8(panel, series, scale.p_large, npp))

    problems = check_fig8_components(series, app)
    assert problems == [], problems

    runner = run_bitonic if app == "sort" else run_fft
    benchmark.pedantic(
        lambda: runner(n_pes=scale.p_large, n=scale.p_large * scale.small_size, h=8),
        rounds=1,
        iterations=1,
    )
