"""Execution-engine scaling: one fig6 panel at jobs ∈ {1, 2, 4}, cold vs warm.

Reproduction target for the engine itself rather than the paper: a
fixed Fig. 6(a) sweep must (a) produce identical records at every
worker count, (b) cost near-zero wall clock on a warm cache with zero
simulations executed, and (c) not regress the serial path.  The table
written to ``out/runner_scaling.txt`` records cold and warm wall-clock
per worker count; the timed subject is the cold ``jobs=2`` sweep, so
``--benchmark-json`` output has the same shape as every other
``bench_*`` module.
"""

from __future__ import annotations

import time

import pytest

from repro.runner import (
    RunnerOptions,
    expand_sweep,
    reset_stats,
    run_specs,
    stats,
)
from repro.runner import sweep as sweep_mod
from repro.metrics.report import format_table

from conftest import BENCH_THREADS, publish

JOBS = (1, 2, 4)


@pytest.fixture(scope="module")
def panel_specs(scale):
    """The fig6(a) sweep: sorting at P = p_small, one curve per size."""
    specs = []
    for npp in scale.sizes_for(scale.p_small):
        specs.extend(expand_sweep("sort", scale.p_small, npp, BENCH_THREADS))
    return specs


@pytest.fixture()
def scratch_memo():
    """Run with an empty engine memo, restoring the shared one after."""
    saved = dict(sweep_mod._memo)
    sweep_mod._memo.clear()
    yield
    sweep_mod._memo.clear()
    sweep_mod._memo.update(saved)


def _timed_sweep(specs, options):
    start = time.perf_counter()
    records = run_specs(specs, options=options)
    return records, time.perf_counter() - start


def test_runner_scaling(benchmark, panel_specs, scratch_memo, outdir, tmp_path_factory):
    rows = []
    baseline = None
    for jobs in JOBS:
        opts = RunnerOptions(
            jobs=jobs, cache_dir=str(tmp_path_factory.mktemp(f"runner-j{jobs}"))
        )
        sweep_mod._memo.clear()
        cold_records, cold_s = _timed_sweep(panel_specs, opts)

        sweep_mod._memo.clear()
        reset_stats()
        warm_records, warm_s = _timed_sweep(panel_specs, opts)

        assert warm_records == cold_records, f"jobs={jobs}: warm != cold"
        assert stats().executed == 0, f"jobs={jobs}: warm cache re-executed"
        if baseline is None:
            baseline = cold_records
        else:
            assert cold_records == baseline, f"jobs={jobs}: differs from jobs=1"
        assert warm_s < cold_s, f"jobs={jobs}: warm cache not faster"
        rows.append([jobs, len(panel_specs), round(cold_s, 3), round(warm_s, 3)])

    publish(
        outdir,
        "runner_scaling",
        format_table(
            ["jobs", "sims", "cold [s]", "warm [s]"],
            rows,
            title="runner scaling: fig6(a) sweep, cold vs warm cache",
        ),
    )

    # Timed subject: the cold parallel sweep at 2 workers.
    def _cold_parallel():
        sweep_mod._memo.clear()
        opts = RunnerOptions(
            jobs=2, cache_dir=str(tmp_path_factory.mktemp("runner-bench"))
        )
        return run_specs(panel_specs, options=opts)

    benchmark.pedantic(_cold_parallel, rounds=1, iterations=1)
