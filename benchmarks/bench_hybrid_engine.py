"""Hybrid fast-forward benchmark: A/B against the detailed engine.

Runs the fig6-shaped sweeps at both fidelities and records, per app:
raw throughput (events/sec) on each side, the detailed/hybrid event
ratio, the fraction of packet transit time (virtual cycles) the hybrid
engine advanced analytically, and — non-negotiably — whether the two
fidelities produced identical metrics.

The event ratio and fast-forward fraction are deterministic functions
of the workload, so they double as a machine-independent regression
signal: CI checks them against the recorded baseline the same way the
calendar-queue benchmark checks its speedup.

Usage::

    python benchmarks/bench_hybrid_engine.py                     # measure + print
    python benchmarks/bench_hybrid_engine.py --write BENCH_engine.json
    python benchmarks/bench_hybrid_engine.py --shape tiny \
        --check BENCH_engine.json --threshold 0.25               # CI smoke

``--check`` exits non-zero if any point diverged, fell back, or if the
event ratio on a conflict-free h=1 point dropped more than
``--threshold`` below the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.sim.hybrid import HybridDifferentialHarness

#: Benchmark shapes: name -> (n_pes, per-PE elements, thread sweep).
#: Same geometry as bench_engine_hotpath so the two sections of
#: BENCH_engine.json describe the same workloads.
SHAPES = {
    "paper": (16, 64, (1, 2, 4, 8)),
    "tiny": (8, 64, (1, 2, 4)),
}


def measure(shape: str, repeats: int = 1) -> dict:
    """A/B both apps across the shape's thread sweep."""
    n_pes, npp, threads = SHAPES[shape]
    out: dict = {"shape": shape, "apps": {}}
    for app in ("sort", "fft"):
        harness = HybridDifferentialHarness(app, seed=0)
        points = {}
        identical = True
        det_events = hyb_events = 0
        det_best = hyb_best = 0.0
        ff_cycles = transit_cycles = 0
        for h in threads:
            result = harness.run_pair(n_pes=n_pes, n=n_pes * npp, h=h)
            identical &= result.identical and result.miss is None
            ff = (result.hybrid.fastforward or {}) if result.hybrid else {}
            points[str(h)] = {
                "identical": result.identical,
                "miss": result.miss,
                "event_ratio": round(result.events_saved_ratio, 3),
                "ff_transit_fraction": round(
                    ff.get("transit_cycles_forwarded", 0)
                    / max(1, ff.get("transit_cycles_total", 1)),
                    3,
                ),
            }
            det_events += result.detailed.events_fired
            if result.hybrid is not None:
                hyb_events += result.hybrid.events_fired
                ff_cycles += ff.get("transit_cycles_forwarded", 0)
                transit_cycles += ff.get("transit_cycles_total", 0)

        # Throughput: time each side separately, best of repeats.
        for fidelity, events in (("detailed", det_events), ("hybrid", hyb_events)):
            best = 0.0
            for _ in range(repeats):
                t0 = time.perf_counter()
                for h in threads:
                    harness._run(fidelity, {"n_pes": n_pes, "n": n_pes * npp, "h": h})
                best = max(best, events / (time.perf_counter() - t0))
            if fidelity == "detailed":
                det_best = best
            else:
                hyb_best = best

        out["apps"][app] = {
            "metrics_identical": identical,
            "detailed_events": det_events,
            "hybrid_events": hyb_events,
            "event_ratio": round(det_events / max(1, hyb_events), 3),
            "detailed_events_per_sec": round(det_best, 1),
            "hybrid_events_per_sec": round(hyb_best, 1),
            "ff_transit_fraction": round(ff_cycles / max(1, transit_cycles), 3),
            "threads": points,
        }
    return out


def check(measured: dict, baseline_path: str, threshold: float) -> int:
    """Identity must hold everywhere; h=1 ratios must track the baseline."""
    with open(baseline_path) as f:
        recorded = json.load(f)
    shape = measured["shape"]
    base = (recorded.get("hybrid") or {}).get("shapes", {}).get(shape)
    failures = 0
    for app, res in measured["apps"].items():
        if not res["metrics_identical"]:
            print(f"{shape}/{app}: DIVERGED (hybrid metrics differ from detailed)")
            failures += 1
            continue
        line = (
            f"{shape}/{app}: identical, {res['event_ratio']:.2f}x fewer events, "
            f"{res['ff_transit_fraction']:.0%} of transit cycles fast-forwarded"
        )
        if base is not None:
            want = base["apps"][app]["threads"]["1"]["event_ratio"]
            got = res["threads"]["1"]["event_ratio"]
            floor = want * (1.0 - threshold)
            line += f"; h=1 ratio {got:.2f}x vs baseline {want:.2f}x (floor {floor:.2f}x)"
            if got < floor:
                line += " -> REGRESSION"
                failures += 1
        print(line)
    if base is None:
        print(f"(no recorded hybrid baseline for shape {shape!r}; identity-only check)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", choices=sorted(SHAPES), default="paper")
    ap.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    ap.add_argument("--write", metavar="FILE", help="record results as the baseline")
    ap.add_argument("--check", metavar="FILE", help="compare against a recorded baseline")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional h=1 event-ratio regression (default 0.25)")
    args = ap.parse_args(argv)

    measured = measure(args.shape, repeats=args.repeats)
    for app, res in measured["apps"].items():
        print(
            f"{args.shape}/{app}: {'identical' if res['metrics_identical'] else 'DIVERGED'}, "
            f"{res['detailed_events']} -> {res['hybrid_events']} events "
            f"({res['event_ratio']:.2f}x), "
            f"{res['hybrid_events_per_sec']:,.0f} ev/s hybrid vs "
            f"{res['detailed_events_per_sec']:,.0f} ev/s detailed, "
            f"ff fraction {res['ff_transit_fraction']:.0%}"
        )

    if args.write:
        try:
            with open(args.write) as f:
                payload = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}
        payload.setdefault("hybrid", {"note": (
            "Detailed-vs-hybrid A/B on the fig6-shaped sweeps.  "
            "metrics_identical and the event ratios are deterministic; "
            "events/sec is host-dependent (in pure Python the per-event "
            "arbitration cost of fast-forwarding can outweigh the event "
            "reduction in wall-clock terms; the contract is the event "
            "count, not wall time).  event_ratio is detailed/hybrid "
            "events fired; ff_transit_fraction is the share of packet "
            "transit cycles advanced analytically instead of event by event."
        ), "shapes": {}})
        payload["hybrid"]["shapes"][args.shape] = measured
        with open(args.write, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        return check(measured, args.check, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
