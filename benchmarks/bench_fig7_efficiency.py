"""Figure 7: efficiency of overlapping (all four panels).

Reproduction target: FFT overlaps > 95 % of its communication with two
to four threads; sorting overlaps far less (the paper: ≈ 35 % — our
exact-accounting simulator lands higher; see EXPERIMENTS.md) and the
two workloads stay clearly separated.  Efficiency at one thread is zero
by definition.
"""

from __future__ import annotations

import pytest

from repro.apps import run_bitonic, run_fft
from repro.experiments import check_efficiency_bands, fig7_panel, format_fig7
from repro.experiments.fig6 import PANELS

from conftest import BENCH_THREADS, publish


@pytest.fixture(scope="module")
def panels(scale):
    return {p: fig7_panel(p, scale, BENCH_THREADS) for p in sorted(PANELS)}


@pytest.mark.parametrize("pair", [("a", "c"), ("b", "d")])
def test_fig7_panel_pair(benchmark, pair, panels, scale, outdir):
    """Check sorting/FFT efficiency bands per machine size."""
    sort_panel, fft_panel = pair
    n_pes = getattr(scale, PANELS[sort_panel][1])
    for p in pair:
        publish(outdir, f"fig7{p}", format_fig7(p, panels[p], n_pes))

    npp = scale.sizes_for(n_pes)[-1]
    fft_floor = 0.90 if n_pes == scale.p_small else 0.80
    problems = check_efficiency_bands(
        panels[sort_panel][npp], panels[fft_panel][npp], fft_floor=fft_floor
    )
    assert problems == [], problems
    # The paper's FFT headline: > 95 % with 2-4 threads.  Our P=16
    # machine reaches it; at P=64 the detailed Omega fabric is
    # throughput-bound under the all-pairs traffic, leaving a few
    # percent of reply latency unmaskable (see EXPERIMENTS.md).
    headline = 0.95 if n_pes == scale.p_small else 0.85
    assert max(panels[fft_panel][npp][h] for h in (2, 4)) > headline

    runner = run_fft
    benchmark.pedantic(
        lambda: runner(n_pes=n_pes, n=n_pes * scale.small_size, h=2),
        rounds=1,
        iterations=1,
    )
