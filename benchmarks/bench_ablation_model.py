"""A2: the Saavedra-Barrera analytic model vs. the simulator.

The paper cites [16]'s linear/transition/saturation analysis and uses
its arithmetic (latency / run length) to explain the 2–4-thread optimum.
This ablation compares the model's predicted latency-masking efficiency
against the simulator's measured idle-communication reduction for both
workloads.
"""

from __future__ import annotations

import pytest

from repro.analysis import SaavedraModel
from repro.experiments import run_app
from repro.metrics.report import format_table

from conftest import publish

P, NPP = 16, 128
THREADS = (1, 2, 3, 4, 8)


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for app, model in (
        ("sort", SaavedraModel.for_sorting(latency=14)),
        ("fft", SaavedraModel.for_fft(latency=14)),
    ):
        base = run_app(app, P, NPP, 1).comm_idle_seconds
        for h in THREADS:
            measured = 1.0 - run_app(app, P, NPP, h).comm_idle_seconds / base
            rows.append(
                [
                    app,
                    h,
                    model.region(h).value,
                    round(model.overlap_efficiency(h), 3),
                    round(measured, 3),
                ]
            )
    return rows


def test_model_vs_simulator(benchmark, comparison, outdir):
    publish(
        outdir,
        "ablation_saavedra",
        format_table(
            ["app", "threads", "region", "model E", "simulated E"],
            comparison,
            title="A2: Saavedra-Barrera latency masking vs simulated idle reduction",
        ),
    )
    for app, h, region, model_e, sim_e in comparison:
        if h == 1:
            assert model_e == 0.0 and sim_e == 0.0
        if region == "saturation" and h > 1:
            # In saturation both predict near-total masking of latency.
            assert sim_e > 0.8, (app, h, sim_e)

    benchmark.pedantic(lambda: run_app(app="fft", n_pes=P, npp=NPP, h=3), rounds=1, iterations=1)
