"""Shared fixtures for the figure-regeneration benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_fig*.py`` module regenerates one figure of the paper: it
sweeps the thread counts and data sizes at the active ``REPRO_SCALE``,
writes the series as a text table under ``benchmarks/out/``, asserts the
paper's qualitative shape, and benchmarks one representative simulation
as the timed subject.  Runs are memoised process-wide, so Fig. 7 reuses
Fig. 6's sweep and Figs. 8/9 share theirs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import default_scale

#: Thread counts swept by the harness (a 6-point subset of the paper's
#: 1..16 x-axis keeps the default run under ~15 minutes).
BENCH_THREADS = (1, 2, 3, 4, 8, 16)

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def scale():
    return default_scale()


@pytest.fixture(scope="session")
def outdir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def publish(outdir: pathlib.Path, name: str, text: str) -> None:
    """Write one regenerated figure to disk and echo it to stdout."""
    path = outdir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
