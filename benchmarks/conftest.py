"""Shared fixtures for the figure-regeneration benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_fig*.py`` module regenerates one figure of the paper: it
sweeps the thread counts and data sizes at the active ``REPRO_SCALE``,
writes the series as a text table under ``benchmarks/out/``, asserts the
paper's qualitative shape, and benchmarks one representative simulation
as the timed subject.

Sweeps execute through the :mod:`repro.runner` engine rather than the
old private memo: runs stay memoised process-wide (Fig. 7 reuses
Fig. 6's sweep, Figs. 8/9 share theirs), persist to the on-disk result
cache between harness invocations, and fan across a process pool.
``REPRO_JOBS`` sets the worker count (default: all cores) and
``REPRO_BENCH_CACHE=0`` disables the disk layer.  The timed subjects
call the simulator directly, so caching never distorts a measurement.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import default_scale
from repro.runner import configure

#: Thread counts swept by the harness (a 6-point subset of the paper's
#: 1..16 x-axis keeps the default run under ~15 minutes).
BENCH_THREADS = (1, 2, 3, 4, 8, 16)

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session", autouse=True)
def runner_config():
    """Route every sweep through the execution engine.

    Parallelism comes from ``REPRO_JOBS`` (default: every core); the
    on-disk result cache is on unless ``REPRO_BENCH_CACHE=0``, which is
    what makes a re-run of the harness near-instant on the sweep side.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "0") or 0) or (os.cpu_count() or 1)
    use_cache = os.environ.get("REPRO_BENCH_CACHE", "1") != "0"
    return configure(jobs=jobs, use_cache=use_cache)


@pytest.fixture(scope="session")
def scale():
    return default_scale()


@pytest.fixture(scope="session")
def outdir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def publish(outdir: pathlib.Path, name: str, text: str) -> None:
    """Write one regenerated figure to disk and echo it to stdout."""
    path = outdir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
