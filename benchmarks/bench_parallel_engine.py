"""Shard-scaling benchmark: adaptive-window PDES vs scalar and sequential.

Runs the fig6-shaped sort sweep under ``repro.sim.parallel`` at K in
{1, 2, 4} shard processes and records wall-clock speedup versus K=1,
plus the window-protocol A/B the adaptive scheme is judged by:

* **windows** — total barrier rounds across the sweep at K=2 under the
  default ``adaptive`` protocol (per-pair lookahead matrix, coalesced
  windows) versus the legacy ``scalar`` protocol (one worst-case
  lookahead) and versus the *uncoalesced* baseline — the wall-to-wall
  window count ``ceil(runtime / L)`` a fixed-step protocol would take.
  Both comparisons are deterministic properties of the protocol, so
  ``--check`` gates them on every host: adaptive must take strictly
  fewer barriers than scalar, and fewer than the uncoalesced baseline
  by the per-shape floor (30% on the tiny CI shape).
* **speedup** — K=4 must beat K=1 by >= 2x, gated only when the host
  has >= 4 cores (shards timeshare below that and the ratio measures
  the host, not the engine).
* **metrics identity** — every run's total ``events_fired`` is
  compared across K and across protocols; any mismatch fails the
  benchmark outright rather than producing a fast wrong number.

Usage::

    python benchmarks/bench_parallel_engine.py                    # measure + print
    python benchmarks/bench_parallel_engine.py --repeats 3 --write BENCH_engine.json
    python benchmarks/bench_parallel_engine.py --shape tiny --check   # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.api import ExecutionPlan, run
from repro.sim import parallel

#: Benchmark shapes: name -> (n_pes, per-PE elements, thread sweep).
SHAPES = {
    "paper": (64, 64, (1, 2, 4, 8)),  # fig6 sweep at P=64
    "tiny": (16, 16, (1, 2)),  # CI smoke: seconds even at K=4 on one core
}

SHARD_COUNTS = (1, 2, 4)

#: Shard count the window-protocol A/B runs at.
WINDOW_K = 2

#: Minimum window reduction vs the uncoalesced baseline, per shape.
#: The tiny sweep's short runs are dominated by idle stretches the
#: coalescer can jump; the paper sweep keeps every shard busier, so
#: its deterministic floor sits lower.
REDUCTION_FLOOR_PCT = {"tiny": 30.0, "paper": 15.0}


def _sweep(shape: str, shards: int | None, protocol: str = "adaptive"):
    """One sort sweep at one shard count; (events, seconds, windows).

    ``windows`` accumulates the barrier accounting of every sharded run
    in the sweep: total rounds, coalesced jumps, and the uncoalesced
    baseline ``ceil(runtime / L)`` — the rounds a fixed-step window
    protocol (no idle-gap jumping) would need for the same runs.
    """
    n_pes, npp, threads = SHAPES[shape]
    events = 0
    windows = {"count": 0, "coalesced": 0, "uncoalesced_baseline": 0}
    t0 = time.perf_counter()
    for h in threads:
        with parallel.window_protocol(protocol):
            report = run(
                "sort", n_pes=n_pes, n=n_pes * npp, h=h,
                plan=ExecutionPlan(shards=shards or 0),
            )
        events += report.events_fired
        if report.windows is not None:
            w = report.windows
            windows["count"] += w["count"]
            windows["coalesced"] += w["coalesced"]
            scalar_l = w["lookahead_min"]  # min off-diagonal == scalar L
            windows["uncoalesced_baseline"] += -(-report.runtime_cycles // scalar_l)
    return events, time.perf_counter() - t0, windows


def measure(shape: str, repeats: int = 1) -> dict:
    """Best-of-``repeats`` wall time at each K, plus the window A/B."""
    out: dict = {
        "shape": shape,
        "cores_detected": os.cpu_count(),
        "shards": {},
    }
    events_by_k: dict[str, int] = {}
    adaptive_windows: dict | None = None
    for shards in (None, *SHARD_COUNTS):
        label = "legacy" if shards is None else str(shards)
        best = float("inf")
        events = 0
        for _ in range(repeats):
            events, secs, windows = _sweep(shape, shards)
            best = min(best, secs)
        out["shards"][label] = {"events": events, "wall_seconds": round(best, 3)}
        if shards is not None:
            # Legacy counts its own event scaffolding, so only the
            # sharded runs participate in the cross-K identity check.
            events_by_k[label] = events
        if shards == WINDOW_K:
            adaptive_windows = windows
    base = out["shards"]["1"]["wall_seconds"]
    for label, res in out["shards"].items():
        res["speedup_vs_k1"] = round(base / res["wall_seconds"], 3)

    # Window-protocol A/B: same sweep, same K, scalar windows.
    scalar_events, _, scalar_windows = _sweep(shape, WINDOW_K, protocol="scalar")
    events_by_k["scalar"] = scalar_events
    assert adaptive_windows is not None
    out["windows"] = {
        "shards": WINDOW_K,
        "adaptive": adaptive_windows["count"],
        "scalar": scalar_windows["count"],
        "uncoalesced_baseline": adaptive_windows["uncoalesced_baseline"],
        "coalesced_jumps": adaptive_windows["coalesced"],
        "reduction_vs_scalar_pct": round(
            100.0 * (1 - adaptive_windows["count"] / scalar_windows["count"]), 1
        ),
        "reduction_vs_uncoalesced_pct": round(
            100.0
            * (1 - adaptive_windows["count"] / adaptive_windows["uncoalesced_baseline"]),
            1,
        ),
    }

    distinct = set(events_by_k.values())
    out["metrics_identical_across_k"] = len(distinct) == 1
    if len(distinct) != 1:
        raise SystemExit(
            f"determinism violation: events_fired differs across shard "
            f"counts/protocols: {events_by_k}"
        )
    return out


def check(measured: dict) -> list[str]:
    """The CI gates; returns failure strings (empty = pass)."""
    failures: list[str] = []
    w = measured["windows"]
    if w["adaptive"] >= w["scalar"]:
        failures.append(
            f"adaptive protocol must take fewer barriers than scalar, got "
            f"{w['adaptive']} vs {w['scalar']}"
        )
    floor = REDUCTION_FLOOR_PCT[measured["shape"]]
    if w["reduction_vs_uncoalesced_pct"] < floor:
        failures.append(
            f"window coalescing must cut >={floor}% of the uncoalesced "
            f"baseline on the {measured['shape']} shape, got "
            f"{w['reduction_vs_uncoalesced_pct']}% "
            f"({w['adaptive']} vs {w['uncoalesced_baseline']})"
        )
    cores = measured["cores_detected"] or 1
    speedup = measured["shards"]["4"]["speedup_vs_k1"]
    if cores >= 4 and speedup < 2.0:
        failures.append(
            f"K=4 must be >=2x faster than K=1 on a {cores}-core host, "
            f"got {speedup}x"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", choices=sorted(SHAPES), default="paper")
    ap.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    ap.add_argument("--write", metavar="FILE", help="record results under the 'parallel' section")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless every gate passes (metrics "
                         "identity, window reduction, conditional speedup)")
    args = ap.parse_args(argv)

    measured = measure(args.shape, repeats=args.repeats)
    for label, res in measured["shards"].items():
        print(
            f"{args.shape}/sort shards={label}: {res['wall_seconds']:.2f}s "
            f"({res['speedup_vs_k1']:.2f}x vs K=1), {res['events']} events"
        )
    w = measured["windows"]
    print(
        f"windows at K={w['shards']}: adaptive={w['adaptive']} "
        f"scalar={w['scalar']} (-{w['reduction_vs_scalar_pct']}%) "
        f"uncoalesced={w['uncoalesced_baseline']} "
        f"(-{w['reduction_vs_uncoalesced_pct']}%)"
    )
    print(f"cores detected: {measured['cores_detected']}")

    if args.write:
        try:
            with open(args.write) as f:
                payload = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}
        section = payload.setdefault("parallel", {})
        section.setdefault("shapes", {})[args.shape] = measured
        section["note"] = (
            "Best-of-N A/B of the sharded conservative-window engine "
            "(repro.sim.parallel) on the fig6-shaped sort sweep.  K=1 is "
            "the same window protocol over a loopback exchange; 'legacy' "
            "is the pre-existing sequential engine.  The 'windows' block "
            "compares barrier rounds at K=2: the default adaptive "
            "protocol (per-pair lookahead matrix + coalesced windows) "
            "versus the legacy scalar protocol and versus the "
            "uncoalesced wall-to-wall baseline ceil(runtime/L); both "
            "reductions are deterministic and gated in CI.  Speedup "
            "depends on cores_detected: shards timeshare when K exceeds "
            "the core count, so the >=2x-at-K=4 gate applies only to "
            "hosts with >= 4 cores; this record was measured on a "
            f"{measured['cores_detected']}-core host."
        )
        with open(args.write, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        failures = check(measured)
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
