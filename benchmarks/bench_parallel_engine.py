"""Shard-scaling benchmark: conservative-window PDES vs single-shard.

Runs the fig6-shaped P=64 sort sweep (n/P=64, h in {1,2,4,8}) under
``repro.sim.parallel`` at K in {1, 2, 4} shard processes and records
wall-clock speedup versus K=1.  The K=1 run uses the same sharded
semantics and window protocol over a loopback exchange, so the ratio
isolates what the fork + window-barrier machinery costs or buys; the
legacy sequential engine (``shards`` unset) is timed alongside for
context.

Every run's total ``events_fired`` is compared across K — the
determinism contract says shard count must never change metrics, so a
mismatch fails the benchmark outright rather than producing a fast
wrong number.

Usage::

    python benchmarks/bench_parallel_engine.py                    # measure + print
    python benchmarks/bench_parallel_engine.py --repeats 3 --write BENCH_engine.json
    python benchmarks/bench_parallel_engine.py --shape tiny --check   # CI smoke

``--check`` exits non-zero when metrics differ across shard counts.
Speedup is *not* gated in CI: it is a property of the host (a K=4 run
needs >= 4 cores to win; on fewer cores the shards timeshare and the
protocol overhead is pure loss), so the recorded numbers carry the
detected core count and are only comparable like-for-like.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.api import run

#: Benchmark shapes: name -> (n_pes, per-PE elements, thread sweep).
SHAPES = {
    "paper": (64, 64, (1, 2, 4, 8)),  # fig6 sweep at P=64
    "tiny": (16, 16, (1, 2)),  # CI smoke: seconds even at K=4 on one core
}

SHARD_COUNTS = (1, 2, 4)


def _sweep(shape: str, shards: int | None) -> tuple[int, float]:
    """Run the shape's sort sweep at one shard count; (events, seconds)."""
    n_pes, npp, threads = SHAPES[shape]
    events = 0
    t0 = time.perf_counter()
    for h in threads:
        report = run("sort", n_pes=n_pes, n=n_pes * npp, h=h, shards=shards)
        events += report.events_fired
    return events, time.perf_counter() - t0


def measure(shape: str, repeats: int = 1) -> dict:
    """Best-of-``repeats`` wall time at each K, plus the legacy engine."""
    out: dict = {
        "shape": shape,
        "cores_detected": os.cpu_count(),
        "shards": {},
    }
    events_by_k: dict[str, int] = {}
    for shards in (None, *SHARD_COUNTS):
        label = "legacy" if shards is None else str(shards)
        best = float("inf")
        events = 0
        for _ in range(repeats):
            events, secs = _sweep(shape, shards)
            best = min(best, secs)
        out["shards"][label] = {"events": events, "wall_seconds": round(best, 3)}
        if shards is not None:
            # Legacy counts its own event scaffolding, so only the
            # sharded runs participate in the cross-K identity check.
            events_by_k[label] = events
    base = out["shards"]["1"]["wall_seconds"]
    for label, res in out["shards"].items():
        res["speedup_vs_k1"] = round(base / res["wall_seconds"], 3)
    distinct = set(events_by_k.values())
    out["metrics_identical_across_k"] = len(distinct) == 1
    if len(distinct) != 1:
        raise SystemExit(
            f"determinism violation: events_fired differs across shard "
            f"counts: {events_by_k}"
        )
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", choices=sorted(SHAPES), default="paper")
    ap.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    ap.add_argument("--write", metavar="FILE", help="record results under the 'parallel' section")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless metrics are identical across K")
    args = ap.parse_args(argv)

    measured = measure(args.shape, repeats=args.repeats)
    for label, res in measured["shards"].items():
        print(
            f"{args.shape}/sort shards={label}: {res['wall_seconds']:.2f}s "
            f"({res['speedup_vs_k1']:.2f}x vs K=1), {res['events']} events"
        )
    print(f"cores detected: {measured['cores_detected']}")

    if args.write:
        try:
            with open(args.write) as f:
                payload = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}
        section = payload.setdefault("parallel", {})
        section.setdefault("shapes", {})[args.shape] = measured
        section["note"] = (
            "Best-of-N A/B of the sharded conservative-window engine "
            "(repro.sim.parallel) on the fig6-shaped P=64 sort sweep.  "
            "K=1 is the same window protocol over a loopback exchange; "
            "'legacy' is the pre-existing sequential engine.  Speedup "
            "depends on cores_detected: shards timeshare when K exceeds "
            "the core count, so the >=2x-at-K=4 target applies to hosts "
            "with >=4 cores.  This record was measured on a "
            f"{measured['cores_detected']}-core host, where K>1 cannot "
            "win wall-clock; metrics identity across K is asserted on "
            "every run regardless."
        )
        with open(args.write, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        return 0 if measured["metrics_identical_across_k"] else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
