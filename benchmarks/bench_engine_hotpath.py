"""Engine hot-path benchmark: events/second through the calendar queue.

Runs the fig6-shaped sort and FFT sweeps (P=16, n/P=64, h ∈ {1,2,4,8})
and reports raw simulator throughput.  For a machine-independent
regression signal it also re-runs the same sweep on
:class:`~repro.sim.queue.ReferenceEventQueue` (the original heapq
engine, which the generic run loop still supports) and records the
calendar queue's *speedup* over it — a ratio that is stable across CI
hardware where absolute events/sec are not.

Usage::

    python benchmarks/bench_engine_hotpath.py                      # measure + print
    python benchmarks/bench_engine_hotpath.py --write BENCH_engine.json
    python benchmarks/bench_engine_hotpath.py --check BENCH_engine.json \
        --shape tiny --threshold 0.25                              # CI perf smoke

``--check`` exits non-zero when the measured speedup falls more than
``--threshold`` (default 25 %) below the recorded baseline for the same
shape.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time

from repro.api import get_app

#: Benchmark shapes: name -> (n_pes, per-PE elements, thread sweep).
SHAPES = {
    "paper": (16, 64, (1, 2, 4, 8)),  # fig6 sweep
    "tiny": (8, 64, (1, 2, 4)),  # CI smoke: big enough to exercise the hot path, seconds even on the heapq engine
}


@contextlib.contextmanager
def _reference_engine():
    """Build machines on the reference heapq queue (generic run loop)."""
    from repro.machine import machine as machine_mod
    from repro.sim.engine import Engine
    from repro.sim.queue import ReferenceEventQueue

    orig = machine_mod.Engine
    machine_mod.Engine = lambda max_cycles: Engine(max_cycles, queue=ReferenceEventQueue())
    try:
        yield
    finally:
        machine_mod.Engine = orig


def _sweep(app: str, shape: str) -> tuple[int, float]:
    """Run one app across the shape's thread sweep; (events, seconds)."""
    n_pes, npp, threads = SHAPES[shape]
    fn = get_app(app)
    events = 0
    t0 = time.perf_counter()
    for h in threads:
        result = fn(n_pes=n_pes, n=n_pes * npp, h=h, seed=0)
        events += result.report.events_fired
    return events, time.perf_counter() - t0


def measure(shape: str, repeats: int = 1) -> dict:
    """Measure both apps on both queues; best of ``repeats`` runs each."""
    out: dict = {"shape": shape, "apps": {}}
    for app in ("sort", "fft"):
        best = best_ref = 0.0
        events = 0
        for _ in range(repeats):
            events, secs = _sweep(app, shape)
            best = max(best, events / secs)
            with _reference_engine():
                _, ref_secs = _sweep(app, shape)
            best_ref = max(best_ref, events / ref_secs)
        out["apps"][app] = {
            "events": events,
            "events_per_sec": round(best, 1),
            "reference_events_per_sec": round(best_ref, 1),
            "speedup_vs_reference": round(best / best_ref, 3),
        }
    return out


def check(measured: dict, baseline_path: str, threshold: float) -> int:
    """Compare measured speedups against the recorded baseline."""
    with open(baseline_path) as f:
        recorded = json.load(f)
    shape = measured["shape"]
    base = recorded["shapes"].get(shape)
    if base is None:
        print(f"no recorded baseline for shape {shape!r} in {baseline_path}")
        return 2
    failures = 0
    for app, res in measured["apps"].items():
        want = base["apps"][app]["speedup_vs_reference"]
        got = res["speedup_vs_reference"]
        floor = want * (1.0 - threshold)
        verdict = "ok" if got >= floor else "REGRESSION"
        print(
            f"{shape}/{app}: speedup {got:.2f}x vs baseline {want:.2f}x "
            f"(floor {floor:.2f}x) -> {verdict}"
        )
        if got < floor:
            failures += 1
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", choices=sorted(SHAPES), default="paper")
    ap.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    ap.add_argument("--write", metavar="FILE", help="record results as the baseline")
    ap.add_argument("--check", metavar="FILE", help="compare against a recorded baseline")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional speedup regression (default 0.25)")
    args = ap.parse_args(argv)

    measured = measure(args.shape, repeats=args.repeats)
    for app, res in measured["apps"].items():
        print(
            f"{args.shape}/{app}: {res['events']} events, "
            f"{res['events_per_sec']:,.0f} ev/s calendar vs "
            f"{res['reference_events_per_sec']:,.0f} ev/s reference "
            f"({res['speedup_vs_reference']:.2f}x)"
        )

    if args.write:
        try:
            with open(args.write) as f:
                payload = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {"shapes": {}}
        payload["shapes"][args.shape] = measured
        with open(args.write, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        return check(measured, args.check, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
