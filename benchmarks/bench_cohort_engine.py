"""Cohort compiler benchmark: A/B against the interpreted engine.

Runs the fig6-shaped sweeps interpreted and compiled and records, per
app: byte identity (the compile oracle — metrics, events, RunRecords
and Perfetto must all match), cohort occupancy (fraction of threads
that actually ran compiled), admission guard work per compiled effect,
and raw throughput (events/sec) on each side.

Three apps bracket the design space honestly:

* ``emc-sort`` — the EM-C front-end compiles every thread through the
  codegen tier (with fused Compute+read effects), so this is where the
  cohort engine's speed lives; CI enforces a >=2x events/sec floor.
* ``sort`` / ``fft`` — the native generator workloads branch on remote
  data, which the symbolic recorder (correctly) declines; the live
  tier records the representative's real execution instead and replays
  the rest, so steady-state occupancy is 1.0.  Wall-clock is ~parity,
  not a win: the simulator core (network, engine, event queue) is
  ~85% of the run, so by Amdahl even eliminating all guest-side
  interpretation moves the needle a few percent — the enforced floors
  pin the measured values (0.89-1.00x sort, 0.93-0.97x fft across the
  shapes on the reference host, with memoized admission keeping warm
  guard work near one trace per member) so the replay path can never
  silently regress.

Usage::

    python benchmarks/bench_cohort_engine.py                     # measure + print
    python benchmarks/bench_cohort_engine.py --write BENCH_engine.json
    python benchmarks/bench_cohort_engine.py --shape tiny \
        --check --floor 2.0 --native-floor 0.80                  # CI smoke

``--check`` exits non-zero if any point diverged, if the compiled
events/sec fell below the app's floor (``--floor`` x interpreted for
EM-C, ``--native-floor`` x for the native apps), or if a native app's
steady-state occupancy dropped to 0.5 or below.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

from repro.compile.differential import CompileDifferentialHarness
from repro.compile.live import clear_registry

#: Benchmark shapes: name -> (n_pes, per-PE elements, thread sweep).
#: Same geometry as the hotpath and hybrid sections of BENCH_engine.json.
SHAPES = {
    "paper": (16, 64, (1, 2, 4, 8)),
    "tiny": (8, 64, (1, 2, 4)),
}

#: Apps measured -> which throughput floor applies ("emc" | "native").
APPS = {"emc-sort": "emc", "sort": "native", "fft": "native"}

#: Native apps must keep this much of every thread on a compiled tier.
OCCUPANCY_FLOOR = 0.5


def _metadata() -> dict:
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # scalar-table fallback still benchmarks
        numpy_version = None
    return {"cpu_count": os.cpu_count(), "numpy": numpy_version}


def measure(shape: str, repeats: int = 1) -> dict:
    """A/B all three apps across the shape's thread sweep."""
    n_pes, npp, threads = SHAPES[shape]
    out: dict = {"shape": shape, "apps": {}, "metadata": _metadata()}
    for app, tier in APPS.items():
        clear_registry()  # cold start: the identity phase sees the ramp
        harness = CompileDifferentialHarness(app, seed=0)
        identical = True
        events = 0
        occupancy_cold = []
        compiled_effects = guards = bailouts = record_failures = 0
        for h in threads:
            result = harness.run_pair(n_pes=n_pes, n=n_pes * npp, h=h)
            identical &= result.identical
            events += result.interpreted.events_fired
            cohort = result.compiled.cohort or {}
            occupancy_cold.append(cohort.get("occupancy", 0.0))
            record_failures += cohort.get("record_failures", 0)

        # Steady state: the live-trace registry is warm after the
        # identity phase; one more untimed sweep settles codegen'd
        # replay functions, then occupancy and the replay counters
        # (compiled effects only accrue on warm replays) are read from
        # warm runs.
        occupancy = []
        for h in threads:
            harness._run(True, {"n_pes": n_pes, "n": n_pes * npp, "h": h})
        for h in threads:
            report = harness._run(
                True, {"n_pes": n_pes, "n": n_pes * npp, "h": h}
            )
            cohort = report.cohort or {}
            occupancy.append(cohort.get("occupancy", 0.0))
            compiled_effects += cohort.get("compiled_effects", 0)
            guards += cohort.get("guards_checked", 0)
            bailouts += cohort.get("bailouts", 0)

        # Throughput: interleave A/B repeats (so host-speed drift — CPU
        # frequency ramp, page-cache warming — hits both sides alike)
        # and take the best of each.  GC is off during timed regions;
        # a collection pause landing in one side skews the ratio.  Both
        # sides fire identical events (that is the oracle), so the
        # events/sec ratio is the wall-clock speedup.
        best = {False: 0.0, True: 0.0}
        gc_was_enabled = gc.isenabled()
        try:
            for _ in range(repeats):
                for compiled in (False, True):
                    gc.collect()
                    gc.disable()
                    t0 = time.perf_counter()
                    for h in threads:
                        harness._run(
                            compiled, {"n_pes": n_pes, "n": n_pes * npp, "h": h}
                        )
                    rate = events / (time.perf_counter() - t0)
                    if gc_was_enabled:
                        gc.enable()
                    best[compiled] = max(best[compiled], rate)
        finally:
            if gc_was_enabled:
                gc.enable()

        out["apps"][app] = {
            "byte_identical": identical,
            "events": events,
            "occupancy": round(sum(occupancy) / len(occupancy), 3),
            "occupancy_cold": round(
                sum(occupancy_cold) / len(occupancy_cold), 3
            ),
            "compiled_effects": compiled_effects,
            "guards_per_compiled_effect": round(
                guards / compiled_effects, 3
            ) if compiled_effects else 0.0,
            "bailouts": bailouts,
            "record_failures": record_failures,
            "interpreted_events_per_sec": round(best[False], 1),
            "compiled_events_per_sec": round(best[True], 1),
            "speedup": round(best[True] / best[False], 3),
            "floor": tier,
        }
    return out


def check(measured: dict, floor: float, native_floor: float) -> int:
    """Identity must hold everywhere; every app must clear its floor;
    native apps must also keep their steady-state occupancy."""
    failures = 0
    for app, res in measured["apps"].items():
        if not res["byte_identical"]:
            print(f"{measured['shape']}/{app}: DIVERGED "
                  f"(compiled run differs from interpreted)")
            failures += 1
            continue
        app_floor = floor if res["floor"] == "emc" else native_floor
        line = (
            f"{measured['shape']}/{app}: identical, occupancy "
            f"{res['occupancy']:.2f}, {res['speedup']:.2f}x events/sec "
            f"(floor {app_floor:.2f}x)"
        )
        if res["speedup"] < app_floor:
            line += " -> REGRESSION"
            failures += 1
        if res["floor"] == "native" and res["occupancy"] <= OCCUPANCY_FLOOR:
            line += f" -> OCCUPANCY below {OCCUPANCY_FLOOR}"
            failures += 1
        print(line)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", choices=sorted(SHAPES), default="paper")
    ap.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    ap.add_argument("--write", metavar="FILE", help="record results as the baseline")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero on divergence or a floor miss")
    ap.add_argument("--floor", type=float, default=2.0,
                    help="minimum compiled/interpreted events/sec ratio "
                         "on the EM-C workload (default 2.0)")
    ap.add_argument("--native-floor", type=float, default=0.80,
                    help="minimum ratio on the native live-traced "
                         "workloads; parity minus measurement noise, "
                         "not a speedup claim (default 0.80)")
    args = ap.parse_args(argv)

    measured = measure(args.shape, repeats=args.repeats)
    for app, res in measured["apps"].items():
        print(
            f"{args.shape}/{app}: "
            f"{'identical' if res['byte_identical'] else 'DIVERGED'}, "
            f"occupancy {res['occupancy']:.2f} "
            f"(cold {res['occupancy_cold']:.2f}), "
            f"{res['compiled_effects']} compiled effects "
            f"({res['guards_per_compiled_effect']:.2f} guards/effect), "
            f"{res['compiled_events_per_sec']:,.0f} ev/s compiled vs "
            f"{res['interpreted_events_per_sec']:,.0f} ev/s interpreted "
            f"({res['speedup']:.2f}x)"
        )

    if args.write:
        try:
            with open(args.write) as f:
                payload = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}
        payload["cohort"] = {"note": (
            "Interpreted-vs-compiled A/B on the fig6-shaped sweeps.  "
            "byte_identical, occupancy and the effect/guard counts are "
            "deterministic; events/sec is host-dependent.  Both sides "
            "fire identical events, so speedup is the wall-clock ratio.  "
            "emc-sort exercises the EM-C codegen tier with fused "
            "Compute+read effects (the enforced >=2x win).  sort and "
            "fft go through the live-tracing tier: data-dependent "
            "shapes the symbolic recorder declines are recorded from "
            "the representative's real execution and replayed, so "
            "steady-state occupancy is 1.0 (occupancy_cold shows the "
            "first-run tracing ramp).  Their floors pin parity, not a "
            "win: the simulator core is ~85% of wall time, so by "
            "Amdahl eliminating guest interpretation is worth a few "
            "percent at most (measured 0.89-1.00x sort, 0.93-0.97x "
            "fft across the shapes; memoized admission keeps warm "
            "guard work near one trace per member)."
        ), "shapes": payload.get("cohort", {}).get("shapes", {})}
        payload["cohort"]["shapes"][args.shape] = measured
        with open(args.write, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        return check(measured, args.floor, args.native_floor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
