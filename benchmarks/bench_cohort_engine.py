"""Cohort compiler benchmark: A/B against the interpreted engine.

Runs the fig6-shaped sweeps interpreted and compiled and records, per
app: byte identity (the compile oracle — metrics, events, RunRecords
and Perfetto must all match), cohort occupancy (fraction of threads
that actually ran compiled), admission guard work per compiled effect,
and raw throughput (events/sec) on each side.

Two apps bracket the design space honestly:

* ``emc-sort`` — the EM-C front-end compiles every thread through the
  codegen tier, so this is where the cohort engine's speed lives; CI
  enforces a wall-clock events/sec floor on it.
* ``sort`` — the native generator workload's merge workers branch on
  remote data, which the recorder (correctly) declines; occupancy is
  near zero and throughput is par with the interpreter.  It is in the
  benchmark to prove the bailout path costs ~nothing and stays
  byte-identical, not to show a win.

Usage::

    python benchmarks/bench_cohort_engine.py                     # measure + print
    python benchmarks/bench_cohort_engine.py --write BENCH_engine.json
    python benchmarks/bench_cohort_engine.py --shape tiny \
        --check --floor 2.0                                      # CI smoke

``--check`` exits non-zero if any point diverged or if the compiled
events/sec on the EM-C workload fell below ``--floor`` times the
interpreted throughput.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time

from repro.compile.differential import CompileDifferentialHarness

#: Benchmark shapes: name -> (n_pes, per-PE elements, thread sweep).
#: Same geometry as the hotpath and hybrid sections of BENCH_engine.json.
SHAPES = {
    "paper": (16, 64, (1, 2, 4, 8)),
    "tiny": (8, 64, (1, 2, 4)),
}

#: Apps measured, and whether CI holds them to the throughput floor.
APPS = {"emc-sort": True, "sort": False}


def measure(shape: str, repeats: int = 1) -> dict:
    """A/B both apps across the shape's thread sweep."""
    n_pes, npp, threads = SHAPES[shape]
    out: dict = {"shape": shape, "apps": {}}
    for app, floored in APPS.items():
        harness = CompileDifferentialHarness(app, seed=0)
        identical = True
        events = 0
        occupancy = []
        compiled_effects = guards = bailouts = record_failures = 0
        for h in threads:
            result = harness.run_pair(n_pes=n_pes, n=n_pes * npp, h=h)
            identical &= result.identical
            events += result.interpreted.events_fired
            cohort = result.compiled.cohort or {}
            occupancy.append(cohort.get("occupancy", 0.0))
            compiled_effects += cohort.get("compiled_effects", 0)
            guards += cohort.get("guards_checked", 0)
            bailouts += cohort.get("bailouts", 0)
            record_failures += cohort.get("record_failures", 0)

        # Throughput: interleave A/B repeats (so host-speed drift — CPU
        # frequency ramp, page-cache warming — hits both sides alike)
        # and take the best of each.  GC is off during timed regions;
        # a collection pause landing in one side skews the ratio.  Both
        # sides fire identical events (that is the oracle), so the
        # events/sec ratio is the wall-clock speedup.
        best = {False: 0.0, True: 0.0}
        gc_was_enabled = gc.isenabled()
        try:
            for _ in range(repeats):
                for compiled in (False, True):
                    gc.collect()
                    gc.disable()
                    t0 = time.perf_counter()
                    for h in threads:
                        harness._run(
                            compiled, {"n_pes": n_pes, "n": n_pes * npp, "h": h}
                        )
                    rate = events / (time.perf_counter() - t0)
                    if gc_was_enabled:
                        gc.enable()
                    best[compiled] = max(best[compiled], rate)
        finally:
            if gc_was_enabled:
                gc.enable()

        out["apps"][app] = {
            "byte_identical": identical,
            "events": events,
            "occupancy": round(sum(occupancy) / len(occupancy), 3),
            "compiled_effects": compiled_effects,
            "guards_per_compiled_effect": round(
                guards / compiled_effects, 3
            ) if compiled_effects else 0.0,
            "bailouts": bailouts,
            "record_failures": record_failures,
            "interpreted_events_per_sec": round(best[False], 1),
            "compiled_events_per_sec": round(best[True], 1),
            "speedup": round(best[True] / best[False], 3),
            "floor_enforced": floored,
        }
    return out


def check(measured: dict, floor: float) -> int:
    """Identity must hold everywhere; EM-C throughput must clear the floor."""
    failures = 0
    for app, res in measured["apps"].items():
        if not res["byte_identical"]:
            print(f"{measured['shape']}/{app}: DIVERGED "
                  f"(compiled run differs from interpreted)")
            failures += 1
            continue
        line = (
            f"{measured['shape']}/{app}: identical, occupancy "
            f"{res['occupancy']:.2f}, {res['speedup']:.2f}x events/sec"
        )
        if res["floor_enforced"]:
            line += f" (floor {floor:.1f}x)"
            if res["speedup"] < floor:
                line += " -> REGRESSION"
                failures += 1
        print(line)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", choices=sorted(SHAPES), default="paper")
    ap.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    ap.add_argument("--write", metavar="FILE", help="record results as the baseline")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero on divergence or a floor miss")
    ap.add_argument("--floor", type=float, default=2.0,
                    help="minimum compiled/interpreted events/sec ratio "
                         "on floor-enforced apps (default 2.0)")
    args = ap.parse_args(argv)

    measured = measure(args.shape, repeats=args.repeats)
    for app, res in measured["apps"].items():
        print(
            f"{args.shape}/{app}: "
            f"{'identical' if res['byte_identical'] else 'DIVERGED'}, "
            f"occupancy {res['occupancy']:.2f}, "
            f"{res['compiled_effects']} compiled effects "
            f"({res['guards_per_compiled_effect']:.2f} guards/effect), "
            f"{res['compiled_events_per_sec']:,.0f} ev/s compiled vs "
            f"{res['interpreted_events_per_sec']:,.0f} ev/s interpreted "
            f"({res['speedup']:.2f}x)"
        )

    if args.write:
        try:
            with open(args.write) as f:
                payload = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}
        payload.setdefault("cohort", {"note": (
            "Interpreted-vs-compiled A/B on the fig6-shaped sweeps.  "
            "byte_identical, occupancy and the effect/guard counts are "
            "deterministic; events/sec is host-dependent.  Both sides "
            "fire identical events, so speedup is the wall-clock ratio.  "
            "emc-sort exercises the EM-C codegen tier (occupancy 1.0, "
            "the enforced win); native sort's data-dependent merge "
            "workers bail to the interpreter by design, so its speedup "
            "~1.0 proves the fallback is free, not that compiling won."
        ), "shapes": {}})
        payload["cohort"]["shapes"][args.shape] = measured
        with open(args.write, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        return check(measured, args.floor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
