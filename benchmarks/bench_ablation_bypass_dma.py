"""A1: the by-passing DMA vs. EM-4-style EXU read servicing.

The paper singles out the IBU→MCU→OBU by-pass path as EM-X's key
feature: remote reads are serviced "without consuming the cycles of the
Execution Unit", whereas the EM-4 predecessor treated each read as a
one-instruction thread.  This ablation runs the same workloads in both
modes and reports the slowdown.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_app
from repro.metrics.report import format_table

from conftest import publish

CONFIGS = [("sort", 16, 64, 4), ("fft", 16, 64, 4)]


@pytest.fixture(scope="module")
def results():
    rows = []
    for app, n_pes, npp, h in CONFIGS:
        emx = run_app(app, n_pes, npp, h)
        em4 = run_app(app, n_pes, npp, h, em4_mode=True)
        rows.append(
            [
                app,
                h,
                round(emx.runtime_seconds * 1e6, 1),
                round(em4.runtime_seconds * 1e6, 1),
                round(em4.runtime_seconds / emx.runtime_seconds, 3),
            ]
        )
    return rows


def test_bypass_dma_ablation(benchmark, results, outdir):
    publish(
        outdir,
        "ablation_bypass_dma",
        format_table(
            ["app", "threads", "EM-X [us]", "EM-4 mode [us]", "slowdown"],
            results,
            title="A1: by-passing DMA vs EXU-serviced remote reads",
        ),
    )
    for row in results:
        assert row[-1] > 1.0, f"EM-4 mode should be slower: {row}"

    benchmark.pedantic(
        lambda: run_app("sort", 16, 64, 4, em4_mode=True, seed=99),
        rounds=1,
        iterations=1,
    )
