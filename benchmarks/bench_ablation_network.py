"""A3: detailed per-stage Omega contention vs. the analytic model,
plus A4: FIFO vs. priority scheduling of read replies.

The detailed model books every switch output port on a packet's route;
the analytic model books only the endpoints.  At the paper's traffic
levels they should agree closely (the fabric is not the bottleneck),
which justifies using either for the figure sweeps.  The IBU's two
priority levels let replies overtake invocations; the ablation measures
whether that matters for these workloads.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_app
from repro.metrics.report import format_table

from conftest import publish

CONFIGS = [("sort", 16, 64, 4), ("fft", 16, 64, 2)]


@pytest.fixture(scope="module")
def network_rows():
    rows = []
    for app, n_pes, npp, h in CONFIGS:
        detailed = run_app(app, n_pes, npp, h, network_model="detailed")
        analytic = run_app(app, n_pes, npp, h, network_model="analytic")
        rows.append(
            [
                app,
                round(detailed.runtime_seconds * 1e6, 1),
                round(analytic.runtime_seconds * 1e6, 1),
                round(analytic.runtime_seconds / detailed.runtime_seconds, 4),
            ]
        )
    return rows


@pytest.fixture(scope="module")
def priority_rows():
    rows = []
    for app, n_pes, npp, h in CONFIGS:
        fifo = run_app(app, n_pes, npp, h)
        prio = run_app(app, n_pes, npp, h, priority_replies=True)
        rows.append(
            [
                app,
                round(fifo.comm_seconds * 1e6, 1),
                round(prio.comm_seconds * 1e6, 1),
                round(prio.runtime_seconds / fifo.runtime_seconds, 4),
            ]
        )
    return rows


def test_network_models_agree(benchmark, network_rows, outdir):
    publish(
        outdir,
        "ablation_network",
        format_table(
            ["app", "detailed [us]", "analytic [us]", "ratio"],
            network_rows,
            title="A3: detailed vs analytic Omega network",
        ),
    )
    for row in network_rows:
        assert 0.9 < row[-1] < 1.1, row

    benchmark.pedantic(
        lambda: run_app("fft", 16, 64, 2, network_model="analytic", seed=7),
        rounds=1,
        iterations=1,
    )


def test_priority_replies(benchmark, priority_rows, outdir):
    publish(
        outdir,
        "ablation_priority",
        format_table(
            ["app", "FIFO comm [us]", "priority comm [us]", "runtime ratio"],
            priority_rows,
            title="A4: FIFO vs high-priority read replies",
        ),
    )
    for row in priority_rows:
        assert 0.8 < row[-1] < 1.2, row

    benchmark.pedantic(
        lambda: run_app("sort", 16, 64, 4, priority_replies=True, seed=7),
        rounds=1,
        iterations=1,
    )
