"""Figure 6: communication time vs. number of threads (all four panels).

Reproduction target: communication time is minimal at 2–4 threads and
rises again toward 16; FFT's valleys are much deeper than sorting's;
curves for different data sizes keep a consistent pattern.
"""

from __future__ import annotations

import pytest

from repro.apps import run_bitonic, run_fft
from repro.experiments import check_fig6_minimum, fig6_panel, format_fig6
from repro.experiments.fig6 import PANELS

from conftest import BENCH_THREADS, publish


@pytest.fixture(scope="module")
def panels(scale):
    return {p: fig6_panel(p, scale, BENCH_THREADS) for p in sorted(PANELS)}


@pytest.mark.parametrize("panel", sorted(PANELS))
def test_fig6_panel(benchmark, panel, panels, scale, outdir):
    app, which = PANELS[panel]
    n_pes = getattr(scale, which)
    series = panels[panel]
    publish(outdir, f"fig6{panel}", format_fig6(panel, series, n_pes))

    # Shape: every sorting curve bottoms at few threads and worsens at
    # 16; FFT curves bottom at >= 2 threads with a deep 1 -> 2 drop.
    for npp, curve in series.items():
        if app == "sort":
            problems = check_fig6_minimum(curve)
            assert problems == [], f"n/P={npp}: {problems}"
        else:
            # The valley deepens with problem size (more butterflies to
            # mask with — the paper's own Fig. 6(d) size effect), and the
            # 64-PE machine's barrier/fabric floor dominates its tiniest
            # problems entirely.
            depth = 0.35
            if npp <= 16:
                depth = 0.8 if n_pes >= 64 else 0.5
            assert curve[2] < depth * curve[1], f"n/P={npp}: shallow FFT valley"
            assert min(curve, key=curve.__getitem__) >= 2

    # Timed subject: one representative mid-sweep simulation, uncached.
    runner = run_bitonic if app == "sort" else run_fft
    npp = scale.small_size
    benchmark.pedantic(
        lambda: runner(n_pes=n_pes, n=n_pes * npp, h=4), rounds=1, iterations=1
    )
