#!/usr/bin/env python3
"""Reproduce the paper's Figure 4: two processors, two threads each,
sorting eight elements — as a live timeline.

Px holds (2,5,6,7) and Py holds (1,3,4,8); each processor's two threads
read the mate's elements through split-phase reads and merge in token
order.  With tracing enabled, the rendered timeline shows exactly the
paper's story: interleaved read bursts, dormant windows where both
threads await replies (unmasked communication), and the serialized
merges at the end.

Run:  python examples/fig4_timeline.py
"""

from repro import MachineConfig
from repro.apps import run_bitonic
from repro.trace import render_timeline, utilization


def main() -> None:
    # The paper's Fig. 4 data: one compare-split step over two PEs.
    data = [2, 5, 6, 7, 1, 3, 4, 8]
    result = run_bitonic(
        n_pes=2,
        n=8,
        h=2,
        data=data,
        config=MachineConfig(n_pes=2, trace=True),
    )
    assert result.sorted_ok
    print("sorted output:", result.output)
    print()

    # Re-run to grab the machine's traces (run_bitonic builds its own
    # machine internally, so drive one explicitly for the timeline).
    from repro import EMX
    from repro.apps.bitonic import (
        BitonicParams,
        STABLE_BASE,
        _fresh_merge_state,
        bitonic_worker,
    )
    from repro.apps.reference import compare_split_direction, reference_bitonic_schedule
    from repro.core import OrderToken
    from repro.isa.costs import KERNEL_COSTS

    machine = EMX(MachineConfig(n_pes=2, trace=True))
    machine.register(bitonic_worker)
    barrier = machine.make_barrier(2)
    schedule = reference_bitonic_schedule(2)
    params = BitonicParams(
        h=2,
        npp=4,
        kernel=KERNEL_COSTS,
        barrier=barrier,
        schedule=schedule,
        read_issue_cycles=machine.config.timing.pkt_gen,
    )
    for pe in range(2):
        block = list(data[pe * 4 : (pe + 1) * 4])
        machine.pes[pe].memory.write_block(STABLE_BASE, block)
        st = machine.pes[pe].guest_state
        st["params"] = params
        st["token"] = OrderToken()
        st["L"] = block
        _, keep_low0 = compare_split_direction(pe, *schedule[0])
        st["mi"] = _fresh_merge_state(keep_low0, 4)
        for t in range(2):
            machine.spawn(pe, "bitonic_worker", t)
    machine.run()

    traces = machine.traces()
    print(render_timeline(traces, width=76))
    print()
    for pe, events in traces.items():
        print(f"PE {pe} EXU utilization: {utilization(events) * 100:.0f}%")


if __name__ == "__main__":
    main()
