#!/usr/bin/env python3
"""EM-C in action: a distributed tree reduction written in the
thread-library language.

Every processor holds a block of values; the program sums each block
locally, then combines partial sums up a binary tree with remote writes
and spawned combiner threads — all expressed in EM-C source, compiled to
explicit-switch threads with automatic cycle accounting.

Run:  python examples/emc_tree_sum.py
"""

from repro import EMX, Bucket, MachineConfig
from repro.apps import datagen
from repro.emc import load_emc

P = 8
PER_PE = 32

SOURCE = """
// Each PE sums its local block, then participates in a binary-tree
// combine: at round r, PEs whose low r+1 bits are zero pull their
// partner's partial from mailbox slot r.
thread tree_sum(n, rounds) {
    var total = 0;
    for (var i = 0; i < n; i = i + 1) {
        total = total + mem[i];
    }
    mem[100] = total;                       // my partial

    for (var r = 0; r < rounds; r = r + 1) {
        var stride = 1;
        for (var s = 0; s < r; s = s + 1) { stride = stride * 2; }
        if (pe() % (2 * stride) == 0) {
            var partner = pe() + stride;
            var theirs = rread(partner, 100);
            total = total + theirs;
            mem[100] = total;
        } else {
            if (pe() % (2 * stride) == stride) {
                // Wait until the parent has pulled: nothing to do —
                // the split-phase read serialises naturally because
                // mem[100] is already published.
                compute(4);
            }
        }
        barrier_wait(bar);
    }
    if (pe() == 0) {
        mem[101] = total;
        print("tree sum =", total);
    }
}
"""


def main() -> None:
    machine = EMX(MachineConfig(n_pes=P))
    bar = machine.make_barrier(1)
    load_emc(machine, SOURCE, env={"bar": bar})

    data = datagen.uniform_ints(P * PER_PE, seed=1, lo=0, hi=1000)
    for pe in range(P):
        machine.pes[pe].memory.write_block(0, data[pe * PER_PE : (pe + 1) * PER_PE])

    rounds = P.bit_length() - 1
    for pe in range(P):
        machine.spawn(pe, "tree_sum", PER_PE, rounds)

    report = machine.run()
    got = machine.pes[0].memory.read(101)
    want = sum(data)
    print(f"reduced {P * PER_PE} values on {P} PEs in "
          f"{report.runtime_cycles} cycles ({report.runtime_seconds * 1e6:.1f} us)")
    print(f"result {got} — {'correct' if got == want else f'WRONG (want {want})'}")
    comp = sum(c.cycles[Bucket.COMPUTATION] for c in report.counters)
    print(f"total computation charged by the EM-C compiler: {comp} cycles")
    print(machine.pes[0].guest_state["emc_output"][0])


if __name__ == "__main__":
    main()
