#!/usr/bin/env python3
"""Architecture ablation: the by-passing DMA against EM-4-style service.

EM-X's key feature is that remote read requests never touch the remote
Execution Unit — the Input Buffer Unit reads memory through a by-passing
DMA and the Output Buffer Unit fires the reply.  Its predecessor, EM-4,
"treats a remote read as another 1-instruction thread which consumes
processor cycles" (§2.1).  This example runs the same workloads both
ways and shows where the stolen cycles land.

Run:  python examples/em4_vs_emx.py
"""

from repro import Bucket, MachineConfig
from repro.apps import run_bitonic, run_fft
from repro.metrics.report import format_table

P = 8
NPP = 128


def run_pair(app_name, runner, h):
    base = MachineConfig(n_pes=P)
    emx = runner(n_pes=P, n=P * NPP, h=h, config=base)
    em4 = runner(n_pes=P, n=P * NPP, h=h, config=base.with_(em4_mode=True))
    ok = emx.sorted_ok if app_name == "sort" else emx.verified
    ok4 = em4.sorted_ok if app_name == "sort" else em4.verified
    assert ok and ok4
    stolen = sum(c.cycles[Bucket.OVERHEAD] for c in em4.report.counters) - sum(
        c.cycles[Bucket.OVERHEAD] for c in emx.report.counters
    )
    return [
        app_name,
        h,
        round(emx.report.runtime_seconds * 1e6, 1),
        round(em4.report.runtime_seconds * 1e6, 1),
        f"{(em4.report.runtime_seconds / emx.report.runtime_seconds - 1) * 100:.1f}%",
        stolen,
    ]


def main() -> None:
    rows = []
    for h in (1, 4):
        rows.append(run_pair("sort", run_bitonic, h))
        rows.append(run_pair("fft", run_fft, h))
    print(
        format_table(
            ["app", "threads", "EM-X [us]", "EM-4 mode [us]", "slowdown", "EXU cycles stolen"],
            rows,
            title=f"By-passing DMA ablation ({P} PEs, n/P={NPP})",
        )
    )
    print(
        "\nEvery remote read serviced on the EXU steals cycles from the\n"
        "victim's own threads — the cost compounds exactly where traffic\n"
        "is heaviest, which is why EM-X moved read service into the IBU."
    )


if __name__ == "__main__":
    main()
