#!/usr/bin/env python3
"""Multithreaded bitonic sorting: the paper's §3.1 workload end to end.

Sorts 1024 integers on 8 processors, sweeping the number of threads per
processor, and prints the communication time, overlap efficiency and
switch profile — a miniature of the paper's Figs. 6, 7 and 9.

Run:  python examples/bitonic_sort.py
"""

from repro import SwitchKind, overlap_series
from repro.apps import run_bitonic
from repro.metrics.report import format_table

P = 8
N = P * 128
THREADS = (1, 2, 3, 4, 8, 16)


def main() -> None:
    comm = {}
    rows = []
    for h in THREADS:
        result = run_bitonic(n_pes=P, n=N, h=h, seed=42)
        assert result.sorted_ok, f"sort failed at h={h}!"
        report = result.report
        comm[h] = report.comm_fig6_seconds
        rows.append(
            [
                h,
                round(report.runtime_seconds * 1e6, 1),
                round(report.comm_fig6_seconds * 1e6, 1),
                round(report.switches(SwitchKind.REMOTE_READ)),
                round(report.switches(SwitchKind.ITER_SYNC)),
                round(report.switches(SwitchKind.THREAD_SYNC)),
                f"{result.reads_saved_fraction * 100:.1f}%",
            ]
        )

    print(
        format_table(
            ["threads", "runtime [us]", "comm [us]", "rd-switch", "iter-sync", "thd-sync", "reads saved"],
            rows,
            title=f"Bitonic sorting of {N} integers on {P} processors",
        )
    )
    print()
    eff = overlap_series(comm)
    best_h = max((h for h in eff if h > 1), key=lambda h: eff[h])
    print(f"communication minimum at h={min(comm, key=comm.__getitem__)} "
          f"(the paper: two to four threads)")
    print(f"best overlap {eff[best_h] * 100:.1f}% at h={best_h}; "
          f"by h=16 the iteration-sync switches erase the gain "
          f"(E={eff[16] * 100:.1f}%)")


if __name__ == "__main__":
    main()
