#!/usr/bin/env python3
"""Quickstart: fine-grain threads, split-phase reads, and what they cost.

Builds a 4-processor EM-X, runs a few threads that exchange data through
split-phase remote reads and remote writes, and prints the per-processor
cycle accounting — the same four components the paper's Fig. 8 stacks.

Run:  python examples/quickstart.py
"""

from repro import EMX, Bucket, MachineConfig, SwitchKind


def main() -> None:
    machine = EMX(MachineConfig(n_pes=4))

    @machine.thread
    def producer(ctx, consumer_pe):
        """Fill a buffer on this PE, then hand its address to a consumer."""
        for i in range(8):
            ctx.mem.write(i, (ctx.pe + 1) * 100 + i)  # local stores…
        yield ctx.compute(8 * 2)  # …charged as computation
        # Thread invocation by packet: spawn the consumer remotely.
        yield ctx.spawn(consumer_pe, "consumer", ctx.pe)

    @machine.thread
    def consumer(ctx, producer_pe):
        """Read the producer's buffer word by word, split-phase."""
        total = 0
        for i in range(8):
            value = yield ctx.read(ctx.ga(producer_pe, i))  # suspends here
            total += value
            yield ctx.compute(3)
        # Publish the result where the host can find it.
        ctx.mem.write(100, total)
        yield ctx.compute(2)

    # Two producer/consumer pairs crossing the machine.
    machine.spawn(0, "producer", 2)
    machine.spawn(1, "producer", 3)

    report = machine.run()

    print(f"run time: {report.runtime_cycles} cycles "
          f"({report.runtime_seconds * 1e6:.2f} us at 20 MHz)")
    print(f"network:  {report.network.summary()}")
    print()
    print("per-processor accounting (cycles):")
    header = f"{'PE':>3} {'comp':>6} {'ovhd':>6} {'comm':>6} {'switch':>7} {'reads':>6}"
    print(header)
    for c in report.counters:
        print(
            f"{c.pe:>3} {c.cycles[Bucket.COMPUTATION]:>6} "
            f"{c.cycles[Bucket.OVERHEAD]:>6} {c.cycles[Bucket.COMMUNICATION]:>6} "
            f"{c.cycles[Bucket.SWITCHING]:>7} {c.reads_issued:>6}"
        )
    print()
    for pe in (2, 3):
        got = machine.pes[pe].memory.read(100)
        want = sum((pe - 2 + 1) * 100 + i for i in range(8))
        status = "ok" if got == want else f"WRONG (expected {want})"
        print(f"consumer on PE {pe} summed {got} -> {status}")
    print(f"remote-read switches on PE 2: "
          f"{report.counters[2].switches[SwitchKind.REMOTE_READ]}")


if __name__ == "__main__":
    main()
