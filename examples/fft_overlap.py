#!/usr/bin/env python3
"""Multithreaded FFT: near-total communication/computation overlap.

Transforms 1024 points on 8 processors, sweeping threads per processor.
FFT has no data dependence inside an iteration — no thread
synchronisation, a butterfly worth hundreds of cycles per point — so two
to four threads hide essentially all the remote-read latency (the
paper's ">95 % overlap" headline).  The full transform is verified
against numpy.fft at the end.

Run:  python examples/fft_overlap.py
"""

import numpy as np

from repro import overlap_series
from repro.apps import run_fft
from repro.apps.reference import bit_reverse_permute
from repro.metrics.report import format_table

P = 8
N = P * 128
THREADS = (1, 2, 3, 4, 8)


def main() -> None:
    comm = {}
    rows = []
    for h in THREADS:
        result = run_fft(n_pes=P, n=N, h=h, seed=7)
        assert result.verified, f"FFT wrong at h={h}: err={result.max_error}"
        report = result.report
        comm[h] = report.comm_fig6_seconds
        pct = report.breakdown.percentages()
        rows.append(
            [
                h,
                round(report.runtime_seconds * 1e6, 1),
                round(report.comm_fig6_seconds * 1e6, 2),
                round(pct["computation"], 1),
                round(pct["communication"], 1),
                round(pct["switching"], 1),
            ]
        )

    print(
        format_table(
            ["threads", "runtime [us]", "comm [us]", "comp %", "comm %", "switch %"],
            rows,
            title=f"{N}-point FFT on {P} processors (communication stages)",
        )
    )
    eff = overlap_series(comm)
    print()
    for h in (2, 3, 4):
        print(f"overlap efficiency at h={h}: {eff[h] * 100:.1f}%  (paper: >95%)")

    # Full-transform verification against numpy.
    full = run_fft(n_pes=P, n=256, h=4, comm_stages_only=False, seed=7)
    natural = bit_reverse_permute(full.output)
    rng = np.random.default_rng(7)
    data = [complex(a, b) for a, b in zip(rng.standard_normal(256), rng.standard_normal(256))]
    err = float(np.max(np.abs(np.array(natural) - np.fft.fft(np.array(data)))))
    print(f"\nfull 256-point transform vs numpy.fft: max |error| = {err:.2e}")


if __name__ == "__main__":
    main()
